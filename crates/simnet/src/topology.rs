//! Network topologies: hosts, switches, directed links.
//!
//! All builders produce *folded-Clos / fat-tree* shapes, where every
//! switch's downstream hosts form a contiguous rank interval. That
//! property makes down-routing trivial (descend into the child whose
//! interval contains the destination) and is exactly how the deterministic
//! up/down routing of InfiniBand subnet managers behaves on these fabrics.
//!
//! Physical cables are full-duplex; we model them as two directed links so
//! that per-direction serialization and per-port counters fall out
//! naturally (a switch "port" in Fig. 12 terms is one directed link's
//! endpoint).

use mcag_verbs::{LinkRate, Rank};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;

/// Index of a node (host or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a *directed* link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl NodeId {
    /// Node id as index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Link id as index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A compute host (NIC endpoint) owning one rank.
    Host(Rank),
    /// A switch at the given level: 1 = leaf/ToR, 2 = aggregation/spine,
    /// 3 = core.
    Switch {
        /// Tree level; hosts sit at level 0.
        level: u8,
    },
}

/// A directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Line rate.
    pub rate: LinkRate,
    /// Propagation delay in nanoseconds.
    pub prop_delay_ns: u64,
}

#[derive(Debug, Clone)]
struct NodeInfo {
    kind: NodeKind,
    /// Contiguous interval of ranks reachable strictly below this node.
    /// For hosts this is `[rank, rank+1)`.
    host_range: Range<u32>,
    /// Directed links leaving this node toward a higher level.
    uplinks: Vec<LinkId>,
    /// Directed links leaving this node toward a lower level.
    downlinks: Vec<LinkId>,
}

/// An immutable network topology.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    nodes: Vec<NodeInfo>,
    links: Vec<Link>,
    host_of_rank: Vec<NodeId>,
}

impl Topology {
    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of hosts (== number of ranks).
    pub fn num_hosts(&self) -> usize {
        self.host_of_rank.len()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Switch { .. }))
            .count()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn host_node(&self, rank: Rank) -> NodeId {
        self.host_of_rank[rank.idx()]
    }

    /// Kind of a node.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.idx()].kind
    }

    /// Level of a node (0 for hosts).
    #[inline]
    pub fn level(&self, n: NodeId) -> u8 {
        match self.nodes[n.idx()].kind {
            NodeKind::Host(_) => 0,
            NodeKind::Switch { level } => level,
        }
    }

    /// A directed link by id.
    #[inline]
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.idx()]
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Directed uplinks of a node.
    #[inline]
    pub fn uplinks(&self, n: NodeId) -> &[LinkId] {
        &self.nodes[n.idx()].uplinks
    }

    /// Directed downlinks of a node.
    #[inline]
    pub fn downlinks(&self, n: NodeId) -> &[LinkId] {
        &self.nodes[n.idx()].downlinks
    }

    /// The contiguous rank interval reachable below `n`.
    #[inline]
    pub fn host_range(&self, n: NodeId) -> Range<u32> {
        self.nodes[n.idx()].host_range.clone()
    }

    /// True if `rank` is reachable going strictly down from `n`.
    #[inline]
    pub fn subtree_contains(&self, n: NodeId, rank: Rank) -> bool {
        self.nodes[n.idx()].host_range.contains(&rank.0)
    }

    /// The downlinks of `n` that lead toward `rank` (parallel links
    /// included). Empty if `rank` is not below `n`.
    pub fn down_toward(&self, n: NodeId, rank: Rank) -> Vec<LinkId> {
        self.nodes[n.idx()]
            .downlinks
            .iter()
            .copied()
            .filter(|&l| self.subtree_contains_or_is(self.links[l.idx()].dst, rank))
            .collect()
    }

    fn subtree_contains_or_is(&self, n: NodeId, rank: Rank) -> bool {
        match self.nodes[n.idx()].kind {
            NodeKind::Host(r) => r == rank,
            NodeKind::Switch { .. } => self.subtree_contains(n, rank),
        }
    }

    /// The directed link running opposite to `l` over the same cable.
    ///
    /// The builder always creates cables as adjacent (up, down) directed
    /// pairs, so the reverse is `l ^ 1`; the debug assertion guards the
    /// invariant.
    #[inline]
    pub fn reverse(&self, l: LinkId) -> LinkId {
        let r = LinkId(l.0 ^ 1);
        debug_assert_eq!(self.links[r.idx()].src, self.links[l.idx()].dst);
        debug_assert_eq!(self.links[r.idx()].dst, self.links[l.idx()].src);
        r
    }

    /// All switches at a given level.
    pub fn switches_at_level(&self, level: u8) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| matches!(self.kind(n), NodeKind::Switch { level: l } if l == level))
            .collect()
    }

    /// The highest switch level present.
    pub fn top_level(&self) -> u8 {
        self.nodes
            .iter()
            .map(|n| match n.kind {
                NodeKind::Host(_) => 0,
                NodeKind::Switch { level } => level,
            })
            .max()
            .unwrap_or(0)
    }

    // ----------------------------------------------------------------- //
    //                              Builders                             //
    // ----------------------------------------------------------------- //

    /// Two hosts wired NIC-to-NIC — the DPA testbed shape ("two servers
    /// connected back-to-back with BlueField 3").
    pub fn back_to_back(rate: LinkRate, prop_delay_ns: u64) -> Topology {
        let mut b = Builder::new("back-to-back");
        let h0 = b.add_host(Rank(0));
        let h1 = b.add_host(Rank(1));
        // With no switch, each direction of the cable is the "uplink" of
        // its transmitting host; routing special-cases the single hop.
        b.connect_peers(h0, h1, rate, prop_delay_ns);
        b.finish(vec![h0, h1])
    }

    /// `n` hosts on one switch (a single crossbar — useful for unit tests
    /// and small protocol studies without multi-stage effects).
    pub fn single_switch(n: usize, rate: LinkRate, prop_delay_ns: u64) -> Topology {
        assert!(n >= 2, "need at least two hosts");
        let mut b = Builder::new(format!("star-{n}"));
        let sw = b.add_switch(1, 0..n as u32);
        let mut hosts = Vec::with_capacity(n);
        for r in 0..n as u32 {
            let h = b.add_host(Rank(r));
            b.connect(h, sw, rate, prop_delay_ns);
            hosts.push(h);
        }
        b.finish(hosts)
    }

    /// A two-level leaf/spine fat-tree.
    ///
    /// * `hosts` total ranks, distributed over `leaves` leaf switches in
    ///   contiguous blocks (`ceil(hosts/leaves)` per leaf, last leaf short).
    /// * Every leaf connects to every spine with `rails` parallel cables.
    pub fn fat_tree_two_level(
        hosts: usize,
        leaves: usize,
        spines: usize,
        rails: usize,
        rate: LinkRate,
        prop_delay_ns: u64,
    ) -> Topology {
        assert!(hosts >= 2 && leaves >= 1 && spines >= 1 && rails >= 1);
        let per_leaf = hosts.div_ceil(leaves);
        let mut b = Builder::new(format!("fat-tree-2l-{hosts}h-{leaves}l-{spines}s"));
        let mut host_nodes = Vec::with_capacity(hosts);
        let mut leaf_nodes = Vec::with_capacity(leaves);
        for li in 0..leaves {
            let lo = (li * per_leaf).min(hosts) as u32;
            let hi = ((li + 1) * per_leaf).min(hosts) as u32;
            let leaf = b.add_switch(1, lo..hi);
            leaf_nodes.push(leaf);
            for r in lo..hi {
                let h = b.add_host(Rank(r));
                b.connect(h, leaf, rate, prop_delay_ns);
                host_nodes.push(h);
            }
        }
        for si in 0..spines {
            let spine = b.add_switch(2, 0..hosts as u32);
            for &leaf in &leaf_nodes {
                for _rail in 0..rails {
                    b.connect(leaf, spine, rate, prop_delay_ns);
                }
            }
            let _ = si;
        }
        b.finish(host_nodes)
    }

    /// The 188-node UCC testbed: 18 SX6036 switches arranged as 12 leaves
    /// (16 host ports each) and 6 spines with 3 parallel rails per
    /// leaf-spine pair (12 × 16 = 192 ports, 188 populated; leaf uses
    /// 16 down + 18 up = 34 of 36 ports), ConnectX-3 56 Gbit/s links.
    pub fn ucc_testbed() -> Topology {
        Topology::fat_tree_two_level(188, 12, 6, 3, LinkRate::CX3_56G, 300)
    }

    /// A three-level fat-tree: `pods` pods, each with `leaves_per_pod`
    /// leaf switches of `hosts_per_leaf` hosts and `aggs_per_pod`
    /// aggregation switches (full bipartite leaf↔agg inside the pod);
    /// `cores` core switches, core `c` connecting to agg `c % aggs_per_pod`
    /// of every pod (the standard fat-tree core wiring).
    #[allow(clippy::too_many_arguments)]
    pub fn fat_tree_three_level(
        pods: usize,
        leaves_per_pod: usize,
        hosts_per_leaf: usize,
        aggs_per_pod: usize,
        cores: usize,
        rate: LinkRate,
        prop_delay_ns: u64,
    ) -> Topology {
        assert!(pods >= 1 && leaves_per_pod >= 1 && hosts_per_leaf >= 1);
        assert!(aggs_per_pod >= 1 && cores >= 1);
        assert!(
            cores.is_multiple_of(aggs_per_pod),
            "cores must distribute evenly over aggs ({cores} % {aggs_per_pod} != 0)"
        );
        let hosts_per_pod = leaves_per_pod * hosts_per_leaf;
        let total_hosts = pods * hosts_per_pod;
        let mut b = Builder::new(format!(
            "fat-tree-3l-{total_hosts}h-{pods}p-{leaves_per_pod}l-{aggs_per_pod}a-{cores}c"
        ));
        let mut host_nodes = Vec::with_capacity(total_hosts);
        let mut agg_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(pods);
        for p in 0..pods {
            let pod_lo = (p * hosts_per_pod) as u32;
            let pod_hi = ((p + 1) * hosts_per_pod) as u32;
            let mut leaves = Vec::with_capacity(leaves_per_pod);
            for li in 0..leaves_per_pod {
                let lo = pod_lo + (li * hosts_per_leaf) as u32;
                let hi = lo + hosts_per_leaf as u32;
                let leaf = b.add_switch(1, lo..hi);
                leaves.push(leaf);
                for r in lo..hi {
                    let h = b.add_host(Rank(r));
                    b.connect(h, leaf, rate, prop_delay_ns);
                    host_nodes.push(h);
                }
            }
            let mut aggs = Vec::with_capacity(aggs_per_pod);
            for _a in 0..aggs_per_pod {
                let agg = b.add_switch(2, pod_lo..pod_hi);
                for &leaf in &leaves {
                    b.connect(leaf, agg, rate, prop_delay_ns);
                }
                aggs.push(agg);
            }
            agg_nodes.push(aggs);
        }
        for c in 0..cores {
            let core = b.add_switch(3, 0..total_hosts as u32);
            let a = c % aggs_per_pod;
            for pod_aggs in &agg_nodes {
                b.connect(pod_aggs[a], core, rate, prop_delay_ns);
            }
        }
        b.finish(host_nodes)
    }

    /// The 1024-node radix-32 cluster modeled in Fig. 2: 4 pods × 16
    /// leaves × 16 hosts, 16 aggs per pod, 64 cores (each agg has 4 core
    /// uplinks; leaf switches use 16 down + 16 up = radix 32).
    pub fn fig2_cluster(rate: LinkRate) -> Topology {
        Topology::fat_tree_three_level(4, 16, 16, 16, 64, rate, 300)
    }

    /// A 512-node radix-16 three-level fat-tree (8 pods × 8 leaves × 8
    /// hosts, 8 aggs per pod, 16 cores) — the post-optimization
    /// simulator-throughput scenario of `BENCH_simcore.json`, 2.7× the
    /// paper's 188-node testbed.
    pub fn fat_tree_512(rate: LinkRate) -> Topology {
        Topology::fat_tree_three_level(8, 8, 8, 8, 16, rate, 300)
    }
}

struct Builder {
    name: String,
    nodes: Vec<NodeInfo>,
    links: Vec<Link>,
}

impl Builder {
    fn new(name: impl Into<String>) -> Builder {
        Builder {
            name: name.into(),
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    fn add_host(&mut self, rank: Rank) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            kind: NodeKind::Host(rank),
            host_range: rank.0..rank.0 + 1,
            uplinks: Vec::new(),
            downlinks: Vec::new(),
        });
        id
    }

    fn add_switch(&mut self, level: u8, host_range: Range<u32>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            kind: NodeKind::Switch { level },
            host_range,
            uplinks: Vec::new(),
            downlinks: Vec::new(),
        });
        id
    }

    /// Add a full-duplex cable between `lo` (lower level) and `hi`
    /// (higher level) as two directed links.
    fn connect(&mut self, lo: NodeId, hi: NodeId, rate: LinkRate, prop_delay_ns: u64) {
        let up = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src: lo,
            dst: hi,
            rate,
            prop_delay_ns,
        });
        let down = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src: hi,
            dst: lo,
            rate,
            prop_delay_ns,
        });
        self.nodes[lo.idx()].uplinks.push(up);
        self.nodes[hi.idx()].downlinks.push(down);
    }

    /// Wire two hosts directly (back-to-back): both directed links are
    /// registered as the *uplink* of their transmitting host.
    fn connect_peers(&mut self, a: NodeId, b: NodeId, rate: LinkRate, prop_delay_ns: u64) {
        let ab = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src: a,
            dst: b,
            rate,
            prop_delay_ns,
        });
        let ba = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src: b,
            dst: a,
            rate,
            prop_delay_ns,
        });
        self.nodes[a.idx()].uplinks.push(ab);
        self.nodes[b.idx()].uplinks.push(ba);
    }

    fn finish(self, host_nodes: Vec<NodeId>) -> Topology {
        let mut host_of_rank: Vec<(Rank, NodeId)> = host_nodes
            .into_iter()
            .map(|n| match self.nodes[n.idx()].kind {
                NodeKind::Host(r) => (r, n),
                NodeKind::Switch { .. } => unreachable!("host list contains a switch"),
            })
            .collect();
        host_of_rank.sort_by_key(|(r, _)| *r);
        for (i, (r, _)) in host_of_rank.iter().enumerate() {
            assert_eq!(r.0 as usize, i, "ranks must be dense 0..P");
        }
        Topology {
            name: self.name,
            nodes: self.nodes,
            links: self.links,
            host_of_rank: host_of_rank.into_iter().map(|(_, n)| n).collect(),
        }
    }
}

/// Pairs of opposite directed links (cable view), useful for reporting.
pub fn duplex_pairs(topo: &Topology) -> HashMap<LinkId, LinkId> {
    let mut m = HashMap::new();
    // Builder always creates up/down adjacent pairs.
    let mut i = 0;
    while i + 1 < topo.num_links() {
        m.insert(LinkId(i as u32), LinkId(i as u32 + 1));
        m.insert(LinkId(i as u32 + 1), LinkId(i as u32));
        i += 2;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_shape() {
        let t = Topology::back_to_back(LinkRate::CX7_200G, 100);
        assert_eq!(t.num_hosts(), 2);
        assert_eq!(t.num_switches(), 0);
        assert_eq!(t.num_links(), 2);
    }

    #[test]
    fn star_shape() {
        let t = Topology::single_switch(8, LinkRate::CX3_56G, 100);
        assert_eq!(t.num_hosts(), 8);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.num_links(), 16);
        let sw = t.switches_at_level(1)[0];
        assert_eq!(t.downlinks(sw).len(), 8);
        assert_eq!(t.host_range(sw), 0..8);
    }

    #[test]
    fn ucc_testbed_matches_paper() {
        let t = Topology::ucc_testbed();
        assert_eq!(t.num_hosts(), 188);
        assert_eq!(t.num_switches(), 18, "paper: 18 SX6036 switches");
        assert_eq!(t.switches_at_level(1).len(), 12);
        assert_eq!(t.switches_at_level(2).len(), 6);
        // Leaf port budget must fit a 36-port SX6036.
        for leaf in t.switches_at_level(1) {
            let ports = t.uplinks(leaf).len() + t.downlinks(leaf).len();
            assert!(ports <= 36, "leaf uses {ports} ports");
        }
        for spine in t.switches_at_level(2) {
            let ports = t.uplinks(spine).len() + t.downlinks(spine).len();
            assert!(ports <= 36, "spine uses {ports} ports");
        }
    }

    #[test]
    fn fig2_cluster_shape() {
        let t = Topology::fig2_cluster(LinkRate::NDR_400G);
        assert_eq!(t.num_hosts(), 1024);
        // Radix-32 budget on every switch.
        for lvl in 1..=3 {
            for sw in t.switches_at_level(lvl) {
                let ports = t.uplinks(sw).len() + t.downlinks(sw).len();
                assert!(ports <= 32, "level-{lvl} switch uses {ports} ports");
            }
        }
    }

    #[test]
    fn host_ranges_are_consistent() {
        let t = Topology::fat_tree_three_level(2, 2, 3, 2, 2, LinkRate::CX3_56G, 100);
        assert_eq!(t.num_hosts(), 12);
        // Every switch's range equals the union of its children's ranges.
        for lvl in 1..=t.top_level() {
            for sw in t.switches_at_level(lvl) {
                let r = t.host_range(sw);
                let mut covered: Vec<u32> = Vec::new();
                for &dl in t.downlinks(sw) {
                    let child = t.link(dl).dst;
                    covered.extend(t.host_range(child));
                }
                covered.sort_unstable();
                covered.dedup();
                let expect: Vec<u32> = r.collect();
                // Cores cover everything through each pod exactly once.
                assert_eq!(covered, expect, "switch {sw:?} level {lvl}");
            }
        }
    }

    #[test]
    fn down_toward_finds_parallel_rails() {
        let t = Topology::ucc_testbed();
        let spine = t.switches_at_level(2)[0];
        let rails = t.down_toward(spine, Rank(0));
        assert_eq!(rails.len(), 3, "3 parallel rails per leaf-spine pair");
        for l in rails {
            let leaf = t.link(l).dst;
            assert!(t.subtree_contains(leaf, Rank(0)));
        }
    }

    #[test]
    fn uneven_host_distribution() {
        let t = Topology::fat_tree_two_level(10, 3, 2, 1, LinkRate::CX3_56G, 100);
        assert_eq!(t.num_hosts(), 10);
        // 4 + 4 + 2 hosts per leaf.
        let sizes: Vec<usize> = t
            .switches_at_level(1)
            .iter()
            .map(|&l| t.host_range(l).len())
            .collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }
}
