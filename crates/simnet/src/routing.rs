//! Unicast routing: deterministic up/down (the InfiniBand subnet-manager
//! style) and adaptive per-packet up-link selection.
//!
//! A route ascends from the source host until the current switch's
//! subtree contains the destination rank, then descends along the unique
//! down-path. Deterministic mode picks among equal-cost up-links (and
//! parallel rails) with a flow hash — the D-mod-k discipline — while
//! adaptive mode randomizes the choice per packet, which is how
//! next-generation fabrics reorder datagrams (Section III-B discusses why
//! the receive path must tolerate this).

use crate::topology::{LinkId, NodeId, NodeKind, Topology};
use mcag_verbs::Rank;
use rand::{Rng, RngExt};

/// Splitmix64 — tiny, deterministic hash for route selection.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// How up-links / parallel rails are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// Flow-hashed (src, dst) deterministic selection: one path per pair.
    Deterministic,
    /// Uniform-random selection per packet (adaptive routing).
    Adaptive,
}

/// Compute a route (sequence of directed links) from `src`'s host NIC to
/// `dst`'s host NIC. `salt` varies the deterministic hash (e.g. to spread
/// multiple QPs of one pair over rails); `rng` is consulted only in
/// adaptive mode.
pub fn route(
    topo: &Topology,
    src: Rank,
    dst: Rank,
    mode: RouteMode,
    salt: u64,
    rng: &mut impl Rng,
) -> Vec<LinkId> {
    assert_ne!(src, dst, "no self-routes");
    let flow = mix64((src.0 as u64) << 32 | dst.0 as u64).wrapping_add(mix64(salt));
    let mut path = Vec::with_capacity(6);
    let mut at = topo.host_node(src);

    // Ascend until the destination is below us.
    let mut hop = 0u64;
    loop {
        match topo.kind(at) {
            NodeKind::Host(r) if r == dst => break,
            NodeKind::Host(_) => {}
            NodeKind::Switch { .. } if topo.subtree_contains(at, dst) => break,
            NodeKind::Switch { .. } => {}
        }
        let ups = topo.uplinks(at);
        assert!(
            !ups.is_empty(),
            "dead-end ascending at node {at:?} (src {src}, dst {dst})"
        );
        let pick = match mode {
            RouteMode::Deterministic => (mix64(flow.wrapping_add(hop)) % ups.len() as u64) as usize,
            RouteMode::Adaptive => rng.random_range(0..ups.len()),
        };
        let l = ups[pick];
        path.push(l);
        at = topo.link(l).dst;
        hop += 1;
        // Direct host-to-host cable (back-to-back topology).
        if matches!(topo.kind(at), NodeKind::Host(r) if r == dst) {
            return path;
        }
        assert!(hop < 16, "routing loop ascending from {src} to {dst}");
    }

    // Descend along the unique down-path (choosing among parallel rails).
    while !matches!(topo.kind(at), NodeKind::Host(r) if r == dst) {
        let downs = topo.down_toward(at, dst);
        assert!(
            !downs.is_empty(),
            "dead-end descending at node {at:?} toward {dst}"
        );
        let pick = match mode {
            RouteMode::Deterministic => {
                (mix64(flow.wrapping_add(0x1000 + hop)) % downs.len() as u64) as usize
            }
            RouteMode::Adaptive => rng.random_range(0..downs.len()),
        };
        let l = downs[pick];
        path.push(l);
        at = topo.link(l).dst;
        hop += 1;
        assert!(hop < 32, "routing loop descending toward {dst}");
    }
    path
}

/// Down-route from a switch to a host: the unique descent through the
/// fat-tree, hashing `salt` over parallel rails. Used by in-network
/// reduction to deliver a reduced shard from the tree root to its owner.
pub fn descend(topo: &Topology, from: NodeId, dst: Rank, salt: u64) -> Vec<LinkId> {
    let mut at = from;
    let mut path = Vec::with_capacity(4);
    let mut hop = 0u64;
    while !matches!(topo.kind(at), NodeKind::Host(r) if r == dst) {
        let downs = topo.down_toward(at, dst);
        assert!(!downs.is_empty(), "no descent from {at:?} to {dst}");
        let pick = (mix64(salt.wrapping_add(hop)) % downs.len() as u64) as usize;
        let l = downs[pick];
        path.push(l);
        at = topo.link(l).dst;
        hop += 1;
        assert!(hop < 16, "descent loop toward {dst}");
    }
    path
}

/// Validate that `path` is a connected src→dst walk (used by tests).
pub fn path_is_valid(topo: &Topology, src: Rank, dst: Rank, path: &[LinkId]) -> bool {
    let mut at = topo.host_node(src);
    for &l in path {
        if topo.link(l).src != at {
            return false;
        }
        at = topo.link(l).dst;
    }
    at == topo.host_node(dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::LinkRate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn back_to_back_single_hop() {
        let t = Topology::back_to_back(LinkRate::CX7_200G, 50);
        let p = route(
            &t,
            Rank(0),
            Rank(1),
            RouteMode::Deterministic,
            0,
            &mut rng(),
        );
        assert_eq!(p.len(), 1);
        assert!(path_is_valid(&t, Rank(0), Rank(1), &p));
    }

    #[test]
    fn star_two_hops() {
        let t = Topology::single_switch(5, LinkRate::CX3_56G, 50);
        let p = route(
            &t,
            Rank(1),
            Rank(4),
            RouteMode::Deterministic,
            0,
            &mut rng(),
        );
        assert_eq!(p.len(), 2);
        assert!(path_is_valid(&t, Rank(1), Rank(4), &p));
    }

    #[test]
    fn same_leaf_stays_local() {
        let t = Topology::ucc_testbed();
        // Ranks 0 and 1 share leaf 0: path must be host->leaf->host.
        let p = route(
            &t,
            Rank(0),
            Rank(1),
            RouteMode::Deterministic,
            0,
            &mut rng(),
        );
        assert_eq!(p.len(), 2);
        assert!(path_is_valid(&t, Rank(0), Rank(1), &p));
    }

    #[test]
    fn cross_leaf_goes_through_spine() {
        let t = Topology::ucc_testbed();
        let p = route(
            &t,
            Rank(0),
            Rank(187),
            RouteMode::Deterministic,
            0,
            &mut rng(),
        );
        assert_eq!(p.len(), 4, "host-leaf-spine-leaf-host");
        assert!(path_is_valid(&t, Rank(0), Rank(187), &p));
    }

    #[test]
    fn three_level_paths_valid_everywhere() {
        let t = Topology::fat_tree_three_level(2, 2, 2, 2, 2, LinkRate::CX3_56G, 50);
        let mut r = rng();
        for s in 0..t.num_hosts() as u32 {
            for d in 0..t.num_hosts() as u32 {
                if s == d {
                    continue;
                }
                let p = route(&t, Rank(s), Rank(d), RouteMode::Deterministic, 0, &mut r);
                assert!(path_is_valid(&t, Rank(s), Rank(d), &p), "{s}->{d}");
                assert!(p.len() <= 6);
            }
        }
    }

    #[test]
    fn deterministic_routes_are_stable() {
        let t = Topology::ucc_testbed();
        let a = route(
            &t,
            Rank(3),
            Rank(99),
            RouteMode::Deterministic,
            1,
            &mut rng(),
        );
        let b = route(
            &t,
            Rank(3),
            Rank(99),
            RouteMode::Deterministic,
            1,
            &mut rng(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_routes_explore_multiple_spines() {
        let t = Topology::ucc_testbed();
        let mut r = rng();
        let mut first_hops = std::collections::HashSet::new();
        for _ in 0..64 {
            let p = route(&t, Rank(0), Rank(100), RouteMode::Adaptive, 0, &mut r);
            assert!(path_is_valid(&t, Rank(0), Rank(100), &p));
            first_hops.insert(p[1]); // leaf -> spine choice
        }
        assert!(first_hops.len() > 1, "adaptive routing never diversified");
    }
}
