//! Per-link traffic counters — the simulated equivalent of the switch
//! port counters the paper reads for Fig. 12.

use crate::topology::{LinkId, NodeKind, Topology};
use serde::{Deserialize, Serialize};

/// The one definition of simulator throughput: events per wall-clock
/// second, 0.0 when no wall time was recorded. Shared by
/// [`TrafficReport::events_per_sec`] and `RunStats::events_per_sec`.
pub(crate) fn events_per_sec(events: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        return 0.0;
    }
    events as f64 * 1e9 / wall_ns as f64
}

/// Byte/packet counters for one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCounters {
    /// Payload bytes of data-class packets (multicast + unicast data).
    pub data_bytes: u64,
    /// Payload bytes of control-class packets (barrier, signals, fetch).
    pub ctrl_bytes: u64,
    /// Total wire bytes including per-packet header overhead.
    pub wire_bytes: u64,
    /// Packets transmitted.
    pub packets: u64,
    /// Packet copies corrupted on this link (fabric drops).
    pub drops: u64,
    /// Packet copies lost because the link was down when they reached it
    /// (fault-injection losses, distinct from corruption): every
    /// unreliable copy, plus reliable copies on a link that never
    /// recovers (reliable copies otherwise wait out the outage).
    pub fault_drops: u64,
    /// Simulated nanoseconds this link spent down.
    pub downtime_ns: u64,
    /// Simulated nanoseconds this link spent up but below full rate.
    pub degraded_ns: u64,
}

impl LinkCounters {
    /// Merge another counter set into this one.
    pub fn absorb(&mut self, other: &LinkCounters) {
        self.data_bytes += other.data_bytes;
        self.ctrl_bytes += other.ctrl_bytes;
        self.wire_bytes += other.wire_bytes;
        self.packets += other.packets;
        self.drops += other.drops;
        self.fault_drops += other.fault_drops;
        self.downtime_ns += other.downtime_ns;
        self.degraded_ns += other.degraded_ns;
    }
}

/// A snapshot of every link counter plus aggregation helpers, annotated
/// with the simulation-engine throughput stats of the run that produced
/// it (events processed, peak event-queue depth, wall-clock time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficReport {
    per_link: Vec<LinkCounters>,
    /// Receiver-not-ready drops per rank (RNR happens at the NIC, not on
    /// a link, so it gets its own axis). Empty when the producing fabric
    /// predates the breakdown or the report was built from raw counters.
    rnr_per_rank: Vec<u64>,
    events: u64,
    peak_queue_depth: usize,
    wall_ns: u64,
}

impl TrafficReport {
    /// Wrap raw per-link counters (indexed by [`LinkId`]). Engine stats
    /// start at zero; see [`TrafficReport::with_engine_stats`].
    pub fn new(per_link: Vec<LinkCounters>) -> TrafficReport {
        TrafficReport {
            per_link,
            rnr_per_rank: Vec::new(),
            events: 0,
            peak_queue_depth: 0,
            wall_ns: 0,
        }
    }

    /// Attach the per-rank receiver-not-ready drop breakdown.
    pub fn with_rnr(mut self, rnr_per_rank: Vec<u64>) -> TrafficReport {
        self.rnr_per_rank = rnr_per_rank;
        self
    }

    /// Attach simulation-engine stats: events processed, the peak pending
    /// count of the event queue, and wall-clock ns spent simulating.
    pub fn with_engine_stats(
        mut self,
        events: u64,
        peak_queue_depth: usize,
        wall_ns: u64,
    ) -> TrafficReport {
        self.events = events;
        self.peak_queue_depth = peak_queue_depth;
        self.wall_ns = wall_ns;
        self
    }

    /// Events the simulation engine processed to produce this report.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Peak pending-event count of the run(s) behind this report.
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue_depth
    }

    /// Wall-clock nanoseconds the engine spent in its event loop.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Simulator throughput: events processed per wall-clock second
    /// (0.0 when no wall time was recorded).
    pub fn events_per_sec(&self) -> f64 {
        events_per_sec(self.events, self.wall_ns)
    }

    /// Counters of one directed link.
    pub fn link(&self, l: LinkId) -> &LinkCounters {
        &self.per_link[l.idx()]
    }

    /// All per-link counters.
    pub fn per_link(&self) -> &[LinkCounters] {
        &self.per_link
    }

    /// Sum counters over every directed link in the fabric.
    pub fn total(&self) -> LinkCounters {
        let mut t = LinkCounters::default();
        for c in &self.per_link {
            t.absorb(c);
        }
        t
    }

    /// Bytes transmitted summed across every *switch* egress port (links
    /// whose source is a switch), including switch-to-host delivery
    /// ports.
    pub fn switch_port_tx_bytes(&self, topo: &Topology) -> u64 {
        self.sum_where(topo, |topo, l| {
            matches!(topo.kind(topo.link(l).src), NodeKind::Switch { .. })
        })
    }

    /// The Fig. 12 metric: "performance counters across all switch
    /// ports". Every switch port counts both directions, so a link's
    /// bytes contribute once per switch endpoint — host↔leaf links count
    /// once, switch↔switch links twice. This is where unicast Allgather's
    /// `N·(P−1)` injection volume becomes visible, while multicast
    /// injects only `N` per rank.
    pub fn switch_port_rxtx_bytes(&self, topo: &Topology) -> u64 {
        self.per_link
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let l = topo.link(LinkId(i as u32));
                let endpoints = matches!(topo.kind(l.src), NodeKind::Switch { .. }) as u64
                    + matches!(topo.kind(l.dst), NodeKind::Switch { .. }) as u64;
                (c.data_bytes + c.ctrl_bytes) * endpoints
            })
            .sum()
    }

    /// Bytes crossing switch-to-switch links only (fabric core traffic).
    pub fn inter_switch_bytes(&self, topo: &Topology) -> u64 {
        self.sum_where(topo, |topo, l| {
            matches!(topo.kind(topo.link(l).src), NodeKind::Switch { .. })
                && matches!(topo.kind(topo.link(l).dst), NodeKind::Switch { .. })
        })
    }

    /// Bytes injected by hosts (host → first switch / peer).
    pub fn host_injection_bytes(&self, topo: &Topology) -> u64 {
        self.sum_where(topo, |topo, l| {
            matches!(topo.kind(topo.link(l).src), NodeKind::Host(_))
        })
    }

    /// Bytes delivered to hosts (last switch → host).
    pub fn host_delivery_bytes(&self, topo: &Topology) -> u64 {
        self.sum_where(topo, |topo, l| {
            matches!(topo.kind(topo.link(l).dst), NodeKind::Host(_))
        })
    }

    /// Total data payload bytes moved across *all* links — the paper's
    /// "total data movement across the network".
    pub fn total_data_bytes(&self) -> u64 {
        self.per_link.iter().map(|c| c.data_bytes).sum()
    }

    /// Total fabric drops.
    pub fn total_drops(&self) -> u64 {
        self.per_link.iter().map(|c| c.drops).sum()
    }

    /// Total down-link (fault-injection) losses across all links.
    pub fn total_fault_drops(&self) -> u64 {
        self.per_link.iter().map(|c| c.fault_drops).sum()
    }

    /// Total simulated nanoseconds of link downtime, summed over links.
    pub fn total_downtime_ns(&self) -> u64 {
        self.per_link.iter().map(|c| c.downtime_ns).sum()
    }

    /// Total simulated nanoseconds links spent degraded, summed over
    /// links.
    pub fn total_degraded_ns(&self) -> u64 {
        self.per_link.iter().map(|c| c.degraded_ns).sum()
    }

    /// Receiver-not-ready drops per rank (empty if the producer did not
    /// attach the breakdown; see [`TrafficReport::with_rnr`]).
    pub fn rnr_per_rank(&self) -> &[u64] {
        &self.rnr_per_rank
    }

    /// Total receiver-not-ready drops across ranks.
    pub fn total_rnr_drops(&self) -> u64 {
        self.rnr_per_rank.iter().sum()
    }

    /// Maximum data bytes observed on any single link — used to verify the
    /// bandwidth-optimality invariant (each byte crosses each link once).
    pub fn max_link_data_bytes(&self) -> u64 {
        self.per_link
            .iter()
            .map(|c| c.data_bytes)
            .max()
            .unwrap_or(0)
    }

    fn sum_where(&self, topo: &Topology, pred: impl Fn(&Topology, LinkId) -> bool) -> u64 {
        self.per_link
            .iter()
            .enumerate()
            .filter(|(i, _)| pred(topo, LinkId(*i as u32)))
            .map(|(_, c)| c.data_bytes + c.ctrl_bytes)
            .sum()
    }

    /// Element-wise sum of two reports (e.g. accumulating iterations).
    /// Engine stats accumulate too: events and wall time add, the peak
    /// queue depth takes the max.
    pub fn absorb(&mut self, other: &TrafficReport) {
        assert_eq!(self.per_link.len(), other.per_link.len());
        for (a, b) in self.per_link.iter_mut().zip(&other.per_link) {
            a.absorb(b);
        }
        // RNR breakdowns add elementwise; a report without one adopts the
        // other side's (so iteration accumulators need no special setup).
        if self.rnr_per_rank.is_empty() {
            self.rnr_per_rank = other.rnr_per_rank.clone();
        } else if !other.rnr_per_rank.is_empty() {
            assert_eq!(self.rnr_per_rank.len(), other.rnr_per_rank.len());
            for (a, b) in self.rnr_per_rank.iter_mut().zip(&other.rnr_per_rank) {
                *a += b;
            }
        }
        self.events += other.events;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.wall_ns += other.wall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::LinkRate;

    #[test]
    fn aggregation_respects_link_classes() {
        let topo = Topology::single_switch(3, LinkRate::CX3_56G, 100);
        // links: (h0<->sw) = 0 up, 1 down; (h1<->sw) = 2,3; (h2<->sw) = 4,5
        let mut per_link = vec![LinkCounters::default(); topo.num_links()];
        per_link[0].data_bytes = 100; // h0 -> sw (host injection)
        per_link[1].data_bytes = 40; // sw -> h0 (switch port tx)
        per_link[3].ctrl_bytes = 7; // sw -> h1 (switch port tx)
        let r = TrafficReport::new(per_link);
        assert_eq!(r.host_injection_bytes(&topo), 100);
        assert_eq!(r.switch_port_tx_bytes(&topo), 47);
        assert_eq!(r.host_delivery_bytes(&topo), 47);
        assert_eq!(r.inter_switch_bytes(&topo), 0);
        assert_eq!(r.total_data_bytes(), 140);
        assert_eq!(r.max_link_data_bytes(), 100);
    }

    #[test]
    fn absorb_sums_iterations() {
        let topo = Topology::single_switch(2, LinkRate::CX3_56G, 100);
        let mut a = TrafficReport::new(vec![LinkCounters::default(); topo.num_links()]);
        let mut one = vec![LinkCounters::default(); topo.num_links()];
        one[0].data_bytes = 5;
        one[0].packets = 1;
        let b = TrafficReport::new(one);
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.link(LinkId(0)).data_bytes, 10);
        assert_eq!(a.total().packets, 2);
    }

    #[test]
    fn fault_breakdown_aggregates_and_absorbs() {
        let topo = Topology::single_switch(2, LinkRate::CX3_56G, 100);
        let mut one = vec![LinkCounters::default(); topo.num_links()];
        one[0].fault_drops = 3;
        one[0].downtime_ns = 1_000;
        one[1].degraded_ns = 500;
        let mut a = TrafficReport::new(one).with_rnr(vec![2, 0]);
        assert_eq!(a.total_fault_drops(), 3);
        assert_eq!(a.total_downtime_ns(), 1_000);
        assert_eq!(a.total_degraded_ns(), 500);
        assert_eq!(a.total_rnr_drops(), 2);
        // An accumulator without an RNR breakdown adopts the other side's.
        let mut acc = TrafficReport::new(vec![LinkCounters::default(); topo.num_links()]);
        acc.absorb(&a);
        a.absorb(&acc);
        assert_eq!(a.total_fault_drops(), 6);
        assert_eq!(a.total_rnr_drops(), 4);
        assert_eq!(a.rnr_per_rank(), &[4, 0]);
    }
}
