//! Fabric and host datapath configuration.

use crate::event::QueueBackend;
use crate::linkstate::LinkSchedule;
use mcag_trace::TraceSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Cost model of the endpoint datapath (NIC DMA + progress-engine CPU).
///
/// The latency constants default to the breakdown in Fig. 6 of the paper:
/// ~170 ns for the NIC to surface a CQE, ~600 ns of progress-thread work
/// per CQE, with the staging-to-user copy overlapped by the non-blocking
/// DMA engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostModel {
    /// CPU cost to build + post one send work request (doorbell batching
    /// amortizes this in the real stack; we charge the amortized cost).
    pub tx_post_overhead_ns: u64,
    /// NIC DMA latency from wire arrival to CQE visibility (step 2, Fig. 6).
    pub rx_cqe_dma_ns: u64,
    /// Progress-worker CPU time consumed per receive CQE: poll, PSN
    /// decode, bitmap update, staging-copy issue, receive re-post
    /// (step 3-4, Fig. 6).
    pub rx_proc_ns_per_cqe: u64,
    /// Number of receive-path worker threads per rank; QPs are pinned to
    /// workers (packet parallelism, Section IV-C).
    pub rx_workers: usize,
    /// Receive queue depth per QP (BlueField-3 maximum is 8192); packets
    /// arriving with no free slot are RNR-dropped.
    pub rq_depth: usize,
}

impl HostModel {
    /// UCC testbed host: 2.2 GHz Xeon, single-threaded UCX-style progress.
    pub fn ucc_host() -> HostModel {
        HostModel {
            tx_post_overhead_ns: 150,
            rx_cqe_dma_ns: 170,
            rx_proc_ns_per_cqe: 350,
            rx_workers: 1,
            rq_depth: 8192,
        }
    }

    /// An idealized infinitely-fast host, for isolating pure network
    /// behaviour (traffic accounting, schedule shape).
    pub fn ideal() -> HostModel {
        HostModel {
            tx_post_overhead_ns: 0,
            rx_cqe_dma_ns: 0,
            rx_proc_ns_per_cqe: 0,
            rx_workers: 1,
            rq_depth: usize::MAX / 2,
        }
    }
}

/// Unreliability model: where and how packets disappear.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropModel {
    /// Probability that a droppable packet copy is corrupted on any single
    /// link traversal. Real fabrics sit at ~1e-12 (Ethernet) to 1e-15
    /// (InfiniBand) bit error rates (paper footnote 2); tests crank this up.
    pub fabric_drop_prob: f64,
    /// Forced drops for failure injection: `(origin rank, PSN, dst rank)`
    /// multicast chunks silently vanish at the destination NIC.
    pub forced: HashSet<(u32, u32, u32)>,
}

impl DropModel {
    /// Lossless fabric.
    pub fn none() -> DropModel {
        DropModel {
            fabric_drop_prob: 0.0,
            forced: HashSet::new(),
        }
    }

    /// Uniform per-traversal drop probability.
    pub fn uniform(p: f64) -> DropModel {
        assert!((0.0..=1.0).contains(&p));
        DropModel {
            fabric_drop_prob: p,
            forced: HashSet::new(),
        }
    }
}

/// Complete fabric configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Endpoint datapath model.
    pub host: HostModel,
    /// Loss model.
    pub drops: DropModel,
    /// Per-hop switch forwarding latency (beyond serialization).
    pub switch_latency_ns: u64,
    /// If true, up-link selection is randomized per packet (adaptive
    /// routing) — packets of one flow may arrive out of order, exercising
    /// the staging-based OOO tolerance of the receive path.
    pub adaptive_routing: bool,
    /// RNG seed for drops and adaptive routing.
    pub seed: u64,
    /// Safety valve: abort if the event count explodes.
    pub max_events: u64,
    /// Switch multicast-group-table capacity: creating more groups than
    /// this panics, modeling the bounded MGID table a subnet manager
    /// programs (the scarce resource `mcag-runtime`'s pool arbitrates).
    /// `None` leaves the table unbounded.
    pub mcast_table_capacity: Option<usize>,
    /// Per-switch in-network-reduction aggregation-table capacity:
    /// live `(group, psn)` reduction states one switch may hold at
    /// once. Exceeding it panics, modeling the bounded SHARP
    /// aggregation SRAM the same way `mcast_table_capacity` models
    /// the MGID table (`mcag-offload`'s in-switch backend sets this).
    /// `None` (the default everywhere) leaves the table unbounded and
    /// skips the accounting branch.
    pub inc_table_capacity: Option<usize>,
    /// Event-queue engine: the timer wheel (default) or the reference
    /// binary heap. Both produce identical results; the heap exists as a
    /// determinism oracle and perf baseline (`BENCH_simcore.json`).
    pub event_queue: QueueBackend,
    /// Scheduled link-state transitions (down windows, flaps, bandwidth
    /// degradation), replayed as ordinary queue events. Usually the
    /// compiled form of a `mcag-faults` `FaultPlan`; empty means a
    /// healthy fabric and adds no per-packet work.
    pub faults: LinkSchedule,
    /// Flight-recorder spec: `Some` allocates a bounded `TraceSink` ring
    /// that records packet lifecycle, link busy intervals, fault
    /// transitions, and sampled queue depth on the simulated clock.
    /// `None` (the default) costs one branch per would-be record.
    pub trace: Option<TraceSpec>,
}

impl FabricConfig {
    /// Configuration mirroring the 188-node UCC testbed runs.
    pub fn ucc_default() -> FabricConfig {
        FabricConfig {
            host: HostModel::ucc_host(),
            drops: DropModel::none(),
            switch_latency_ns: 200,
            adaptive_routing: false,
            seed: 0x5eed,
            max_events: 2_000_000_000,
            mcast_table_capacity: None,
            inc_table_capacity: None,
            event_queue: QueueBackend::default(),
            faults: LinkSchedule::empty(),
            trace: None,
        }
    }

    /// Idealized hosts on a lossless fabric (pure network behaviour).
    pub fn ideal() -> FabricConfig {
        FabricConfig {
            host: HostModel::ideal(),
            ..FabricConfig::ucc_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = FabricConfig::ucc_default();
        assert_eq!(c.host.rx_workers, 1);
        assert_eq!(c.host.rq_depth, 8192);
        assert_eq!(c.drops.fabric_drop_prob, 0.0);
        assert!(!c.adaptive_routing);
    }

    #[test]
    #[should_panic]
    fn drop_probability_validated() {
        DropModel::uniform(1.5);
    }
}
