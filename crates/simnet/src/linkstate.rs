//! Scheduled link-state transitions — the enforcement half of fault
//! injection.
//!
//! A [`LinkSchedule`] is a validated, time-sorted list of
//! [`LinkStateEvent`]s: at a given simulated instant a directed link goes
//! down, comes back up, or changes its *effective* bandwidth (a degraded
//! link serializes packets slower, modeling FEC retraining / lane
//! downgrade). The schedule is plain data — the higher-level fault
//! *models* (degraded links, flapping ports, switch failures) live in the
//! `mcag-faults` crate and compile down to this type; the fabric replays
//! the schedule as ordinary queue events, so fault runs stay bit-for-bit
//! deterministic.
//!
//! ## Enforcement semantics (what the fabric does with this)
//!
//! * **Down link, NIC uplink**: the NIC stalls its whole injection
//!   pipeline (link-level backpressure) and resumes when the schedule
//!   brings the port back up.
//! * **Down link, switch egress**: unreliable copies (multicast/UD
//!   datagrams) are lost and counted as `fault_drops`; reliable copies
//!   (RC control, fetches, reads) are delayed until the link's next up
//!   transition — link-level retransmission wins eventually. A reliable
//!   copy on a link that never recovers is dropped and the collective
//!   times out at its watchdog.
//! * **Degraded link**: serialization time is scaled by the inverse of
//!   the bandwidth multiplier (`bw_num / bw_den`, e.g. 1/4 for a
//!   100G→25G downgrade).
//!
//! Link state is sampled when a packet copy reaches the port; a
//! transition mid-serialization does not affect copies already committed
//! to the wire.

use crate::topology::LinkId;
use serde::{Deserialize, Serialize};

/// One scheduled transition of one directed link's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStateEvent {
    /// Simulated instant the new state takes effect.
    pub at_ns: u64,
    /// The directed link transitioning.
    pub link: LinkId,
    /// Whether the link carries traffic at all from `at_ns` on.
    pub up: bool,
    /// Effective-bandwidth multiplier numerator (with [`Self::bw_den`]):
    /// `1/1` is full rate, `1/4` is a four-fold downgrade. Ignored while
    /// the link is down.
    pub bw_num: u32,
    /// Effective-bandwidth multiplier denominator.
    pub bw_den: u32,
}

impl LinkStateEvent {
    /// A link going fully down at `at_ns`.
    pub fn down(at_ns: u64, link: LinkId) -> LinkStateEvent {
        LinkStateEvent {
            at_ns,
            link,
            up: false,
            bw_num: 1,
            bw_den: 1,
        }
    }

    /// A link restored to full rate at `at_ns`.
    pub fn up(at_ns: u64, link: LinkId) -> LinkStateEvent {
        LinkStateEvent {
            at_ns,
            link,
            up: true,
            bw_num: 1,
            bw_den: 1,
        }
    }

    /// A link up but serializing at `bw_num / bw_den` of its line rate
    /// from `at_ns` on.
    pub fn degraded(at_ns: u64, link: LinkId, bw_num: u32, bw_den: u32) -> LinkStateEvent {
        LinkStateEvent {
            at_ns,
            link,
            up: true,
            bw_num,
            bw_den,
        }
    }

    /// True when this event leaves the link below full rate.
    pub fn is_degraded(&self) -> bool {
        self.up && self.bw_num != self.bw_den
    }
}

/// A validated, time-sorted schedule of link-state transitions, consumed
/// by `Fabric::new` (via `FabricConfig::faults`) as ordinary queue
/// events. The compiled form of a `mcag-faults` `FaultPlan`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkSchedule {
    events: Vec<LinkStateEvent>,
    /// For event `i`: the earliest `at_ns >= events[i].at_ns` at which
    /// `events[i].link` is up again (`u64::MAX` if it never recovers).
    /// Precomputed so the fabric can park a stalled reliable packet with
    /// one lookup.
    next_up: Vec<u64>,
}

impl LinkSchedule {
    /// A schedule with no transitions (the healthy-fabric default).
    pub fn empty() -> LinkSchedule {
        LinkSchedule::default()
    }

    /// Build a schedule from transitions in any order. Events are stably
    /// sorted by `(at_ns, link)`; two transitions of the same link at the
    /// same instant apply in their given order (the later one wins), so a
    /// composed plan is deterministic. Panics on a zero bandwidth
    /// multiplier or one above full rate.
    pub fn new(mut events: Vec<LinkStateEvent>) -> LinkSchedule {
        for e in &events {
            assert!(
                e.bw_num >= 1 && e.bw_den >= 1,
                "zero bandwidth multiplier on {:?}",
                e.link
            );
            assert!(
                e.bw_num <= e.bw_den,
                "bandwidth multiplier above full rate on {:?} ({}/{})",
                e.link,
                e.bw_num,
                e.bw_den
            );
        }
        events.sort_by_key(|e| (e.at_ns, e.link.0));
        // Reverse scan: carry the latest known up-time per link backwards
        // so every event knows when its link next carries traffic.
        let mut next_up = vec![u64::MAX; events.len()];
        let mut latest_up: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for i in (0..events.len()).rev() {
            let e = events[i];
            if e.up {
                latest_up.insert(e.link.0, e.at_ns);
                next_up[i] = e.at_ns;
            } else {
                next_up[i] = latest_up.get(&e.link.0).copied().unwrap_or(u64::MAX);
            }
        }
        LinkSchedule { events, next_up }
    }

    /// The sorted transitions.
    pub fn events(&self) -> &[LinkStateEvent] {
        &self.events
    }

    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the schedule has no transitions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// When `events()[idx]`'s link is next up at or after that event
    /// (`u64::MAX` when it never recovers).
    pub fn next_up_ns(&self, idx: usize) -> u64 {
        self.next_up[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sorted_and_next_up_is_computed() {
        let l = LinkId(3);
        let m = LinkId(7);
        let s = LinkSchedule::new(vec![
            LinkStateEvent::up(500, l),
            LinkStateEvent::down(100, l),
            LinkStateEvent::down(200, m),
            LinkStateEvent::degraded(900, l, 1, 4),
        ]);
        let at: Vec<u64> = s.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(at, vec![100, 200, 500, 900]);
        // Down at 100 recovers at 500; m never recovers.
        assert_eq!(s.next_up_ns(0), 500);
        assert_eq!(s.next_up_ns(1), u64::MAX);
        assert_eq!(s.next_up_ns(2), 500);
        // A degraded link still carries traffic: it is "up" now.
        assert_eq!(s.next_up_ns(3), 900);
        assert!(s.events()[3].is_degraded());
    }

    #[test]
    fn flap_sequence_next_up_points_at_each_recovery() {
        let l = LinkId(0);
        let s = LinkSchedule::new(vec![
            LinkStateEvent::down(10, l),
            LinkStateEvent::up(20, l),
            LinkStateEvent::down(30, l),
            LinkStateEvent::up(40, l),
        ]);
        assert_eq!(s.next_up_ns(0), 20);
        assert_eq!(s.next_up_ns(2), 40);
    }

    #[test]
    fn empty_schedule_is_empty() {
        assert!(LinkSchedule::empty().is_empty());
        assert_eq!(LinkSchedule::empty().len(), 0);
    }

    #[test]
    #[should_panic(expected = "above full rate")]
    fn overspeed_multiplier_rejected() {
        LinkSchedule::new(vec![LinkStateEvent::degraded(0, LinkId(0), 2, 1)]);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_multiplier_rejected() {
        LinkSchedule::new(vec![LinkStateEvent {
            at_ns: 0,
            link: LinkId(0),
            up: true,
            bw_num: 0,
            bw_den: 1,
        }]);
    }
}
