//! Hardware multicast groups as switch-level spanning trees.
//!
//! In InfiniBand, the subnet manager computes one spanning tree per
//! multicast group (MGID); any attached endpoint may inject, and switches
//! replicate the packet along every tree branch except the one it arrived
//! on. We reproduce exactly that: [`McastTree::build`] roots the tree at a
//! deterministic top-level switch and takes the union of the unique
//! down-paths to every member — a tree, because down-paths in a fat-tree
//! are unique. Flooding from any entry point therefore visits every tree
//! edge **at most once**, which is the paper's bandwidth-optimality
//! property ("the send buffer from any participant will be moved through
//! any link in the network once", Insight 1).

use crate::routing::mix64;
use crate::topology::{LinkId, NodeId, NodeKind, Topology};
use mcag_verbs::{McastGroupId, Rank};
use std::collections::HashSet;

/// A multicast group realized as a spanning tree over the fabric.
///
/// The adjacency and parent tables are dense `Vec`s indexed by node id —
/// the fabric consults them once per packet hop on the replication hot
/// path, where a hash lookup per hop would dominate the switch model.
#[derive(Debug, Clone)]
pub struct McastTree {
    group: McastGroupId,
    members: Vec<Rank>,
    member_set: HashSet<Rank>,
    /// For every node, the directed links leaving it along tree edges
    /// (both "up" and "down" directions are present, since a packet
    /// entering mid-tree must also climb toward the root). Empty for
    /// nodes off the tree.
    adj: Vec<Vec<LinkId>>,
    /// Nodes that lie on the tree, in first-touch order.
    tree_nodes: Vec<NodeId>,
    /// Number of undirected tree edges.
    edges: usize,
    /// Tree root (the switch the subnet manager rooted the group at, or
    /// a host for switchless topologies).
    root: NodeId,
    /// Directed link from each non-root tree node toward its parent
    /// (`None` at the root and off the tree).
    parent_link: Vec<Option<LinkId>>,
}

impl McastTree {
    /// Build the spanning tree for `members` of `group`.
    ///
    /// The tree root is a top-level switch chosen by hashing the group id,
    /// mirroring how a subnet manager balances distinct MGIDs over spines —
    /// this is what spreads the paper's multicast *subgroups* (packet
    /// parallelism) over different core switches. For the back-to-back
    /// topology (no switches), the tree degenerates to the single cable.
    pub fn build(topo: &Topology, group: McastGroupId, members: &[Rank]) -> McastTree {
        McastTree::build_avoiding(topo, group, members, &[])
            .expect("tree build failed on a healthy fabric")
    }

    /// Build the spanning tree for `members`, routing around the switches
    /// in `avoid` — the subnet manager's recovery path when a chassis on
    /// an existing group's tree dies. With an empty `avoid` list the
    /// candidate sets are identical to [`McastTree::build`], so the root
    /// and rail hashes pick the same tree bit-for-bit.
    ///
    /// Returns `None` when no live root remains or some member is only
    /// reachable through an avoided switch — the group stays on its old
    /// (partially dead) tree in that case.
    pub fn build_avoiding(
        topo: &Topology,
        group: McastGroupId,
        members: &[Rank],
        avoid: &[NodeId],
    ) -> Option<McastTree> {
        assert!(members.len() >= 2, "multicast group needs ≥ 2 members");
        let member_set: HashSet<Rank> = members.iter().copied().collect();
        assert_eq!(member_set.len(), members.len(), "duplicate members");
        let avoided = |n: NodeId| avoid.contains(&n);

        let mut adj: Vec<Vec<LinkId>> = vec![Vec::new(); topo.num_nodes()];
        let mut tree_nodes: Vec<NodeId> = Vec::new();
        let mut undirected: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut add_edge = |topo: &Topology,
                            down_link: LinkId,
                            adj: &mut Vec<Vec<LinkId>>,
                            tree_nodes: &mut Vec<NodeId>| {
            let l = topo.link(down_link);
            let key = (l.src.min(l.dst), l.src.max(l.dst));
            if undirected.insert(key) {
                for n in [l.src, l.dst] {
                    if adj[n.idx()].is_empty() {
                        tree_nodes.push(n);
                    }
                }
                adj[l.src.idx()].push(down_link);
                adj[l.dst.idx()].push(topo.reverse(down_link));
                true
            } else {
                false
            }
        };

        let mut edges = 0usize;
        let top = topo.top_level();
        let root;
        if top == 0 {
            // Back-to-back: the "tree" is the host-to-host cable.
            let h = topo.host_node(members[0]);
            root = h;
            let l = topo.uplinks(h)[0];
            add_edge(topo, l, &mut adj, &mut tree_nodes);
            edges += 1;
        } else {
            let tops: Vec<NodeId> = topo
                .switches_at_level(top)
                .into_iter()
                .filter(|&s| !avoided(s))
                .collect();
            if tops.is_empty() {
                return None;
            }
            root = tops[(mix64(group.0 as u64) % tops.len() as u64) as usize];
            for &m in members {
                // Unique down-path from root to member; among parallel
                // rails pick by (group, member) hash so distinct subgroups
                // spread over rails. Rails into an avoided switch are not
                // candidates — the recovery tree must not touch it.
                let mut at = root;
                while !matches!(topo.kind(at), NodeKind::Host(r) if r == m) {
                    let downs: Vec<LinkId> = topo
                        .down_toward(at, m)
                        .into_iter()
                        .filter(|&l| !avoided(topo.link(l).dst))
                        .collect();
                    if downs.is_empty() {
                        return None; // member only reachable through `avoid`
                    }
                    let pick =
                        (mix64((group.0 as u64) << 32 | m.0 as u64) % downs.len() as u64) as usize;
                    let l = downs[pick];
                    if add_edge(topo, l, &mut adj, &mut tree_nodes) {
                        edges += 1;
                    }
                    at = topo.link(l).dst;
                }
            }
        }

        // Orient the tree: BFS from the root records each node's link
        // toward its parent (used by in-network reduction, which flows
        // *up* the same tree multicast floods down).
        let mut parent_link: Vec<Option<LinkId>> = vec![None; topo.num_nodes()];
        let mut frontier = vec![(root, None::<LinkId>)];
        while let Some((node, in_link)) = frontier.pop() {
            let back = in_link.map(|l| topo.reverse(l));
            for &l in &adj[node.idx()] {
                if Some(l) == back {
                    continue;
                }
                let child = topo.link(l).dst;
                parent_link[child.idx()] = Some(topo.reverse(l));
                frontier.push((child, Some(l)));
            }
        }

        Some(McastTree {
            group,
            members: members.to_vec(),
            member_set,
            adj,
            tree_nodes,
            edges,
            root,
            parent_link,
        })
    }

    /// Group id.
    pub fn group(&self) -> McastGroupId {
        self.group
    }

    /// Members in attach order.
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// Is `rank` attached?
    pub fn is_member(&self, rank: Rank) -> bool {
        self.member_set.contains(&rank)
    }

    /// Number of undirected tree edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Directed links on which a switch (or entry host) must replicate a
    /// packet that arrived at `node` via `in_link` (`None` when the packet
    /// is injected locally by the node itself).
    ///
    /// Returns a borrowing iterator over the cached adjacency — the fabric
    /// calls this once per packet hop, so no per-hop allocation happens.
    pub fn out_links(
        &self,
        topo: &Topology,
        node: NodeId,
        in_link: Option<LinkId>,
    ) -> impl Iterator<Item = LinkId> + '_ {
        let back = in_link.map(|l| topo.reverse(l));
        self.adj[node.idx()]
            .iter()
            .copied()
            .filter(move |&l| Some(l) != back)
    }

    /// All tree nodes (for invariant checks).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tree_nodes.iter().copied()
    }

    /// Tree root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Directed link from `node` toward its tree parent (`None` at the
    /// root) — the up-direction used by in-network reduction.
    pub fn parent_link(&self, node: NodeId) -> Option<LinkId> {
        self.parent_link[node.idx()]
    }

    /// Directed links from `node` to its tree children (everything in the
    /// tree adjacency except the link toward the parent).
    ///
    /// Like [`McastTree::out_links`], this borrows the cached adjacency
    /// instead of allocating — it sits on the in-network-reduction hot
    /// path, called per contribution per switch.
    pub fn child_links(&self, node: NodeId) -> impl Iterator<Item = LinkId> + '_ {
        let up = self.parent_link[node.idx()];
        self.adj[node.idx()]
            .iter()
            .copied()
            .filter(move |&l| Some(l) != up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::LinkRate;
    use std::collections::HashMap;

    fn all_ranks(n: u32) -> Vec<Rank> {
        (0..n).map(Rank).collect()
    }

    /// Flood from `entry` and return every (node, arrival link) visited.
    fn flood(topo: &Topology, tree: &McastTree, entry: Rank) -> Vec<(NodeId, LinkId)> {
        let mut seen_links = HashSet::new();
        let mut out = Vec::new();
        let start = topo.host_node(entry);
        let mut frontier = vec![(start, None::<LinkId>)];
        while let Some((node, in_link)) = frontier.pop() {
            for l in tree.out_links(topo, node, in_link) {
                assert!(seen_links.insert(l), "link {l:?} traversed twice in flood");
                let dst = topo.link(l).dst;
                out.push((dst, l));
                frontier.push((dst, Some(l)));
            }
        }
        out
    }

    #[test]
    fn star_tree_spans_all_members() {
        let topo = Topology::single_switch(6, LinkRate::CX3_56G, 100);
        let tree = McastTree::build(&topo, McastGroupId(0), &all_ranks(6));
        assert_eq!(tree.num_edges(), 6); // one edge per host
        let visits = flood(&topo, &tree, Rank(2));
        let hosts: HashSet<Rank> = visits
            .iter()
            .filter_map(|(n, _)| match topo.kind(*n) {
                NodeKind::Host(r) => Some(r),
                _ => None,
            })
            .collect();
        // Every member except the sender receives exactly one copy.
        assert_eq!(hosts.len(), 5);
        assert!(!hosts.contains(&Rank(2)));
    }

    #[test]
    fn ucc_tree_reaches_every_member_once() {
        let topo = Topology::ucc_testbed();
        let members = all_ranks(188);
        let tree = McastTree::build(&topo, McastGroupId(3), &members);
        for entry in [Rank(0), Rank(91), Rank(187)] {
            let visits = flood(&topo, &tree, entry);
            let mut host_hits: HashMap<Rank, usize> = HashMap::new();
            for (n, _) in &visits {
                if let NodeKind::Host(r) = topo.kind(*n) {
                    *host_hits.entry(r).or_default() += 1;
                }
            }
            assert_eq!(host_hits.len(), 187, "entry {entry}");
            for (&r, &hits) in &host_hits {
                assert_eq!(hits, 1, "rank {r} got {hits} copies");
                assert_ne!(r, entry);
            }
        }
    }

    #[test]
    fn tree_edge_count_is_minimal() {
        // A spanning tree over m hosts + s internal switches has exactly
        // (m + s_used - 1) edges; flood visits each edge once, so the edge
        // count bounds the per-broadcast traffic: this *is* bandwidth
        // optimality at the structural level.
        let topo = Topology::ucc_testbed();
        let tree = McastTree::build(&topo, McastGroupId(0), &all_ranks(188));
        let n_nodes = tree.nodes().count();
        assert_eq!(tree.num_edges(), n_nodes - 1, "not a tree");
    }

    #[test]
    fn three_level_tree_spans_pods() {
        let topo = Topology::fat_tree_three_level(2, 2, 2, 2, 2, LinkRate::CX3_56G, 100);
        let tree = McastTree::build(&topo, McastGroupId(1), &all_ranks(8));
        let visits = flood(&topo, &tree, Rank(7));
        let hosts: HashSet<_> = visits
            .iter()
            .filter_map(|(n, _)| match topo.kind(*n) {
                NodeKind::Host(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(hosts.len(), 7);
    }

    #[test]
    fn distinct_groups_use_distinct_roots() {
        let topo = Topology::ucc_testbed();
        let members = all_ranks(188);
        let trees: Vec<_> = (0..4)
            .map(|g| McastTree::build(&topo, McastGroupId(g), &members))
            .collect();
        // Not all four subgroup trees should share an identical edge set —
        // the whole point of subgroup replication is spreading load.
        let edge_sets: HashSet<Vec<usize>> = trees
            .iter()
            .map(|t| {
                let mut e: Vec<usize> = t
                    .adj
                    .iter()
                    .flatten()
                    .map(|l| l.idx().min(topo.reverse(*l).idx()))
                    .collect();
                e.sort_unstable();
                e.dedup();
                e
            })
            .collect();
        assert!(edge_sets.len() > 1, "all subgroup trees identical");
    }

    #[test]
    fn partial_membership_tree() {
        let topo = Topology::ucc_testbed();
        let members: Vec<Rank> = (0..188).step_by(4).map(Rank).collect();
        let tree = McastTree::build(&topo, McastGroupId(9), &members);
        let visits = flood(&topo, &tree, members[0]);
        let hosts: HashSet<_> = visits
            .iter()
            .filter_map(|(n, _)| match topo.kind(*n) {
                NodeKind::Host(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(hosts.len(), members.len() - 1);
        for h in &hosts {
            assert!(tree.is_member(*h), "non-member {h} received traffic");
        }
    }

    #[test]
    fn avoiding_empty_matches_build_exactly() {
        let topo = Topology::ucc_testbed();
        let members = all_ranks(188);
        for g in 0..4 {
            let a = McastTree::build(&topo, McastGroupId(g), &members);
            let b = McastTree::build_avoiding(&topo, McastGroupId(g), &members, &[]).unwrap();
            assert_eq!(a.root(), b.root());
            assert_eq!(a.adj, b.adj, "group {g}: avoid=[] must pick the same tree");
        }
    }

    #[test]
    fn rebuild_routes_around_a_dead_spine() {
        let topo = Topology::fat_tree_two_level(8, 2, 2, 1, LinkRate::CX3_56G, 100);
        let members = all_ranks(8);
        let orig = McastTree::build(&topo, McastGroupId(0), &members);
        let dead = orig.root(); // kill the spine the SM rooted the group at
        let tree = McastTree::build_avoiding(&topo, McastGroupId(0), &members, &[dead])
            .expect("other spine is alive");
        assert_ne!(tree.root(), dead);
        assert!(tree.nodes().all(|n| n != dead), "tree touches dead switch");
        // Still a spanning tree reaching every other member once.
        let visits = flood(&topo, &tree, Rank(0));
        let hosts: HashSet<_> = visits
            .iter()
            .filter_map(|(n, _)| match topo.kind(*n) {
                NodeKind::Host(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(hosts.len(), 7);
    }

    #[test]
    fn rebuild_fails_when_no_route_remains() {
        let topo = Topology::fat_tree_two_level(8, 2, 2, 1, LinkRate::CX3_56G, 100);
        let members = all_ranks(8);
        let spines = topo.switches_at_level(topo.top_level());
        assert!(
            McastTree::build_avoiding(&topo, McastGroupId(0), &members, &spines).is_none(),
            "no live spine, rebuild must refuse"
        );
        // A dead leaf strands its hosts: members under it are unreachable.
        let leaf = topo.switches_at_level(1)[0];
        assert!(McastTree::build_avoiding(&topo, McastGroupId(0), &members, &[leaf]).is_none());
    }

    #[test]
    #[should_panic(expected = "≥ 2 members")]
    fn tiny_group_rejected() {
        let topo = Topology::single_switch(4, LinkRate::CX3_56G, 100);
        McastTree::build(&topo, McastGroupId(0), &[Rank(0)]);
    }

    #[test]
    fn orientation_covers_all_nodes() {
        let topo = Topology::ucc_testbed();
        let tree = McastTree::build(&topo, McastGroupId(2), &all_ranks(188));
        let root = tree.root();
        assert!(tree.parent_link(root).is_none());
        // Every non-root tree node has a parent link pointing along a
        // tree edge, and following parents reaches the root.
        for n in tree.nodes() {
            if n == root {
                continue;
            }
            let mut at = n;
            let mut hops = 0;
            while at != root {
                let l = tree.parent_link(at).expect("orphan tree node");
                assert_eq!(topo.link(l).src, at);
                at = topo.link(l).dst;
                hops += 1;
                assert!(hops < 10, "orientation loop");
            }
        }
    }

    #[test]
    fn children_partition_tree_degree() {
        let topo = Topology::single_switch(5, LinkRate::CX3_56G, 100);
        let tree = McastTree::build(&topo, McastGroupId(0), &all_ranks(5));
        let sw = tree.root(); // single switch is the root
        assert_eq!(tree.child_links(sw).count(), 5);
        for r in 0..5 {
            let h = topo.host_node(Rank(r));
            assert_eq!(tree.child_links(h).count(), 0, "hosts are leaves");
            assert!(tree.parent_link(h).is_some());
        }
    }
}
