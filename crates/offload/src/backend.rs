//! The [`OffloadBackend`] trait and the [`BackendKind`] selector enum.

use crate::{cpu::HostCpuBackend, dpa::DpaBackend, fpga::FpgaBackend, sharp::SharpBackend};
use mcag_dpa::{ArrivalModel, DatapathMetrics};
use mcag_simnet::HostModel;
use serde::{Deserialize, Serialize};

/// Where a backend's collective compute physically runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// On the endpoint NIC's embedded processor (DPA, FPGA lanes):
    /// receive handlers run next to the DMA engine, the host CPU is
    /// out of the per-chunk path.
    EndpointNic,
    /// On a host core (the UCX-style progress-thread baseline): every
    /// CQE crosses PCIe and consumes host cycles.
    HostCore,
    /// Inside fabric switches on the multicast tree (SHARP-style):
    /// partial aggregates merge on the up-path, endpoints only post
    /// contributions and receive one result.
    InSwitch,
}

/// Capacity limits of a backend — the scarce resources a scheduler
/// must pack, analogous to the switch MGID table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendLimits {
    /// Concurrent execution contexts (hardware threads, pipeline
    /// lanes, aggregation units) available for receive handlers.
    pub contexts: u32,
    /// For in-switch backends: bounded per-switch aggregation-table
    /// entries — live `(group, psn)` reduction states a switch can
    /// hold. `None` for endpoint backends (no fabric-resident state).
    pub aggregation_entries: Option<usize>,
}

/// Which receive datapath a cost query models. Mirrors the two
/// transports of the paper's Table I: UD needs the staging→user copy
/// (loopback DMA on the DPA, CPU memcpy on the host), UC writes user
/// memory directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatapathTransport {
    /// Unreliable Datagram: multicast-capable, pays the extra copy.
    Ud,
    /// Unreliable Connected: zero-copy placement.
    Uc,
}

/// One in-network compute backend: where collective compute runs and
/// what it costs on the virtual clock.
///
/// The contract has two halves. [`OffloadBackend::datapath`] is the
/// *device-level* cost model — chunks through the backend's receive
/// pipeline, measured like `mcag-dpa`'s Table I. [`OffloadBackend::
/// host_model`] *compiles* that model into the per-CQE endpoint cost
/// the DES fabric charges, so a backend plugs into any existing
/// driver through `FabricConfig.host`. Both are deterministic pure
/// functions: identical inputs give identical outputs on every host.
pub trait OffloadBackend {
    /// Human-readable backend name (stable; used in bench tables).
    fn name(&self) -> &'static str;

    /// The selector that instantiates this backend.
    fn kind(&self) -> BackendKind;

    /// Where the compute runs.
    fn placement(&self) -> Placement;

    /// Capacity limits.
    fn limits(&self) -> BackendLimits;

    /// One-time provisioning cost before the first collective can use
    /// the backend (kernel load, partial reconfiguration, SM
    /// aggregation-tree programming). Charged once per service, not
    /// per chunk.
    fn setup_ns(&self) -> u64;

    /// Run `chunks` chunks of `chunk_bytes` through the backend's
    /// receive datapath on `threads` contexts under `arrival`,
    /// returning Table-I-style metrics.
    fn datapath(
        &self,
        transport: DatapathTransport,
        threads: u32,
        chunk_bytes: usize,
        chunks: u64,
        arrival: ArrivalModel,
    ) -> DatapathMetrics;

    /// Compile this backend into the endpoint cost model the fabric
    /// charges per CQE for `chunk_bytes` chunks (MTU-sized in
    /// practice). Deterministic: derived from a fixed saturated
    /// calibration run of [`OffloadBackend::datapath`].
    fn host_model(&self, chunk_bytes: usize) -> HostModel;
}

/// Chunk count of the saturated calibration run behind
/// [`OffloadBackend::host_model`] — enough to wash out pipeline-fill
/// transients, small enough to be negligible at config time.
pub const CALIBRATION_CHUNKS: u64 = 2_048;

/// Plain-data backend selector: what configs store and serialize
/// (trait objects do not fit in a `Clone + PartialEq` config).
/// [`BackendKind::instantiate`] produces the live model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// BlueField-3 DPA barrel processor (the paper's device).
    DpaBf3,
    /// Host-CPU progress thread (the Fig. 5 baseline).
    HostCpu,
    /// Deep-pipelined FPGA SmartNIC lanes.
    FpgaSmartNic,
    /// SHARP-style in-switch reduction.
    SharpSwitch,
}

impl BackendKind {
    /// Every backend, in bench-table order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::DpaBf3,
        BackendKind::HostCpu,
        BackendKind::FpgaSmartNic,
        BackendKind::SharpSwitch,
    ];

    /// Instantiate the backend's cost model (default specs).
    pub fn instantiate(self) -> Box<dyn OffloadBackend> {
        match self {
            BackendKind::DpaBf3 => Box::new(DpaBackend::bf3()),
            BackendKind::HostCpu => Box::new(HostCpuBackend::new()),
            BackendKind::FpgaSmartNic => Box::new(FpgaBackend::default_nic()),
            BackendKind::SharpSwitch => Box::new(SharpBackend::quantum_class()),
        }
    }

    /// Stable short label for tables and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::DpaBf3 => "dpa_bf3",
            BackendKind::HostCpu => "host_cpu",
            BackendKind::FpgaSmartNic => "fpga_smartnic",
            BackendKind::SharpSwitch => "sharp_switch",
        }
    }

    /// Convenience: the endpoint cost model of the default-spec
    /// backend (see [`OffloadBackend::host_model`]).
    pub fn host_model(self, chunk_bytes: usize) -> HostModel {
        self.instantiate().host_model(chunk_bytes)
    }

    /// Convenience: in-switch aggregation-table bound, `None` for
    /// endpoint backends (see [`BackendLimits::aggregation_entries`]).
    pub fn aggregation_entries(self) -> Option<usize> {
        self.instantiate().limits().aggregation_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_instantiates_consistently() {
        for kind in BackendKind::ALL {
            let be = kind.instantiate();
            assert_eq!(be.kind(), kind);
            assert!(!be.name().is_empty());
            assert!(be.limits().contexts >= 1);
            let hm = be.host_model(4096);
            assert!(hm.rq_depth > 0);
            // In-switch backends, and only they, hold fabric state.
            assert_eq!(
                be.limits().aggregation_entries.is_some(),
                be.placement() == Placement::InSwitch
            );
        }
    }

    #[test]
    fn host_models_are_deterministic() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.host_model(4096), kind.host_model(4096));
        }
    }

    #[test]
    fn offloaded_backends_beat_the_host_cpu_per_cqe() {
        let cpu = BackendKind::HostCpu.host_model(4096);
        for kind in [BackendKind::DpaBf3, BackendKind::FpgaSmartNic] {
            let hm = kind.host_model(4096);
            assert!(
                hm.rx_proc_ns_per_cqe < cpu.rx_proc_ns_per_cqe,
                "{:?} per-CQE {} ns should undercut host CPU {} ns",
                kind,
                hm.rx_proc_ns_per_cqe,
                cpu.rx_proc_ns_per_cqe
            );
        }
    }
}
