//! SHARP-style in-switch reduction backend.
//!
//! Compute moves off the endpoints entirely: switches on the
//! multicast tree merge contributions on the up-path (`mcag-simnet`'s
//! `IncUp` route state and `reduce_at_switch`), so each down-link
//! carries one reduced result instead of `P − 1` operand streams —
//! the on-wire advantage `backendfigs` measures for AG+RS. What the
//! endpoint keeps is descriptor work only, and what the fabric pays
//! is bounded switch SRAM: live `(group, psn)` aggregation states,
//! charged like the MGID table via
//! [`FabricConfig::inc_table_capacity`](mcag_simnet::FabricConfig).

use crate::backend::{BackendKind, BackendLimits, DatapathTransport, OffloadBackend, Placement};
use crate::pipeline::PipelineModel;
use mcag_dpa::{ArrivalModel, DatapathMetrics};
use mcag_simnet::HostModel;

/// Switch aggregation-engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharpSpec {
    /// Parallel aggregation units per switch ASIC.
    pub units: u32,
    /// Operand bytes each unit consumes per cycle.
    pub bytes_per_cycle: u32,
    /// ASIC clock in GHz.
    pub freq_ghz: f64,
    /// Bounded aggregation-table entries per switch: live
    /// `(group, psn)` reduction states (the scarce resource, like the
    /// MGID table).
    pub aggregation_entries: usize,
    /// Endpoint per-CQE descriptor cost (ns): post contributions,
    /// absorb the one reduced completion — no reduction arithmetic.
    pub endpoint_rx_ns: u64,
    /// Subnet-manager cost to program the aggregation tree (ns).
    pub tree_program_ns: u64,
}

impl SharpSpec {
    /// A Quantum-class switch ASIC: 32 aggregation units × 32 B/cycle
    /// at 1.3 GHz, 512 table entries.
    pub fn quantum_class() -> SharpSpec {
        SharpSpec {
            units: 32,
            bytes_per_cycle: 32,
            freq_ghz: 1.3,
            aggregation_entries: 512,
            endpoint_rx_ns: 120,
            tree_program_ns: 250_000,
        }
    }
}

/// The in-switch reduction backend over a [`SharpSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharpBackend {
    spec: SharpSpec,
}

impl SharpBackend {
    /// Backend over the Quantum-class spec.
    pub fn quantum_class() -> SharpBackend {
        SharpBackend {
            spec: SharpSpec::quantum_class(),
        }
    }

    /// Backend over a custom spec.
    pub fn with_spec(spec: SharpSpec) -> SharpBackend {
        SharpBackend { spec }
    }

    /// Hardware spec handle.
    pub fn spec(&self) -> &SharpSpec {
        &self.spec
    }
}

impl OffloadBackend for SharpBackend {
    fn name(&self) -> &'static str {
        "SHARP in-switch"
    }

    fn kind(&self) -> BackendKind {
        BackendKind::SharpSwitch
    }

    fn placement(&self) -> Placement {
        Placement::InSwitch
    }

    fn limits(&self) -> BackendLimits {
        BackendLimits {
            contexts: self.spec.units,
            aggregation_entries: Some(self.spec.aggregation_entries),
        }
    }

    fn setup_ns(&self) -> u64 {
        self.spec.tree_program_ns
    }

    fn datapath(
        &self,
        _transport: DatapathTransport,
        threads: u32,
        chunk_bytes: usize,
        chunks: u64,
        arrival: ArrivalModel,
    ) -> DatapathMetrics {
        // The switch aggregation pipeline: each chunk is read against
        // the stored partial and written back — two operand passes.
        // Transport does not matter in-switch (no staging copy).
        PipelineModel {
            lanes: self.spec.units,
            bytes_per_cycle: self.spec.bytes_per_cycle,
            freq_ghz: self.spec.freq_ghz,
            fill_cycles: 64,
            overhead_cycles: 32,
        }
        .run(2, threads, chunk_bytes, chunks, arrival)
    }

    fn host_model(&self, _chunk_bytes: usize) -> HostModel {
        // Endpoints never touch payload arithmetic: the per-CQE cost
        // is descriptor handling of the one reduced completion.
        HostModel {
            tx_post_overhead_ns: 150,
            rx_cqe_dma_ns: 170,
            rx_proc_ns_per_cqe: self.spec.endpoint_rx_ns,
            rx_workers: 1,
            rq_depth: 8192,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_cost_is_descriptor_only() {
        let hm = SharpBackend::quantum_class().host_model(4096);
        assert!(hm.rx_proc_ns_per_cqe < 350);
        // Independent of chunk size: no payload pass at the endpoint.
        assert_eq!(hm, SharpBackend::quantum_class().host_model(65_536));
    }

    #[test]
    fn aggregation_table_is_bounded() {
        let be = SharpBackend::quantum_class();
        assert_eq!(be.limits().aggregation_entries, Some(512));
    }

    #[test]
    fn switch_pipeline_sustains_line_rate_at_4k() {
        // 32 units × 32 B/cycle × 1.3 GHz ≫ a 400 Gbit/s port.
        let m = SharpBackend::quantum_class().datapath(
            DatapathTransport::Uc,
            32,
            4096,
            4_000,
            ArrivalModel::Saturated,
        );
        assert!(m.goodput_gbps > 400.0, "{:.1} Gbit/s", m.goodput_gbps);
    }
}
