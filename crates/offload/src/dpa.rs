//! The paper's device, re-homed: BlueField-3 DPA barrel processor.

use crate::backend::{
    BackendKind, BackendLimits, DatapathTransport, OffloadBackend, Placement, CALIBRATION_CHUNKS,
};
use mcag_dpa::{run_datapath, ArrivalModel, DatapathMetrics, DpaSpec, Kernel, KernelKind};
use mcag_simnet::HostModel;

/// BlueField-3 DPA backend. [`DpaBackend::datapath`] delegates
/// straight to [`mcag_dpa::run_datapath`] on the same spec and kernel
/// traces as before the refactor, so every Table-I number reproduces
/// bit-for-bit through the trait (asserted in
/// `tests/backends_determinism.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpaBackend {
    spec: DpaSpec,
}

impl DpaBackend {
    /// The ConnectX-7 / BlueField-3 complex of the paper.
    pub fn bf3() -> DpaBackend {
        DpaBackend {
            spec: DpaSpec::bf3(),
        }
    }

    /// Hardware spec handle.
    pub fn spec(&self) -> &DpaSpec {
        &self.spec
    }
}

/// Compile a measured datapath into the fabric's per-CQE endpoint
/// model: the sustained per-chunk service interval becomes the
/// progress cost charged per receive CQE; NIC DMA latency and send
/// posting keep the testbed constants (the offload moves *processing*,
/// not the DMA engine).
pub(crate) fn compile_host_model(m: &DatapathMetrics) -> HostModel {
    let per_cqe = (m.wall_ns / m.chunks as f64).ceil() as u64;
    HostModel {
        tx_post_overhead_ns: 150,
        rx_cqe_dma_ns: 170,
        rx_proc_ns_per_cqe: per_cqe.max(1),
        rx_workers: 1,
        rq_depth: 8192,
    }
}

impl OffloadBackend for DpaBackend {
    fn name(&self) -> &'static str {
        "BlueField-3 DPA"
    }

    fn kind(&self) -> BackendKind {
        BackendKind::DpaBf3
    }

    fn placement(&self) -> Placement {
        Placement::EndpointNic
    }

    fn limits(&self) -> BackendLimits {
        BackendLimits {
            contexts: self.spec.total_threads(),
            aggregation_entries: None,
        }
    }

    fn setup_ns(&self) -> u64 {
        // Loading the receive kernel onto the DPA and arming its
        // execution contexts — cheap next to SM group programming.
        100_000
    }

    fn datapath(
        &self,
        transport: DatapathTransport,
        threads: u32,
        chunk_bytes: usize,
        chunks: u64,
        arrival: ArrivalModel,
    ) -> DatapathMetrics {
        let kind = match transport {
            DatapathTransport::Ud => KernelKind::DpaUd,
            DatapathTransport::Uc => KernelKind::DpaUc,
        };
        run_datapath(
            &self.spec,
            &Kernel::new(kind),
            threads,
            chunk_bytes,
            chunks,
            arrival,
        )
    }

    fn host_model(&self, chunk_bytes: usize) -> HostModel {
        let m = self.datapath(
            DatapathTransport::Ud,
            self.spec.total_threads(),
            chunk_bytes,
            CALIBRATION_CHUNKS,
            ArrivalModel::Saturated,
        );
        compile_host_model(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datapath_is_the_pre_refactor_engine() {
        let be = DpaBackend::bf3();
        let via_trait = be.datapath(
            DatapathTransport::Uc,
            4,
            4096,
            5_000,
            ArrivalModel::Saturated,
        );
        let direct = run_datapath(
            &DpaSpec::bf3(),
            &Kernel::new(KernelKind::DpaUc),
            4,
            4096,
            5_000,
            ArrivalModel::Saturated,
        );
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn full_complex_beats_the_ucc_progress_thread() {
        // 256 barrel threads next to the DMA engine sustain a far
        // shorter per-CQE interval than the 350 ns tuned host engine.
        let hm = DpaBackend::bf3().host_model(4096);
        assert!(hm.rx_proc_ns_per_cqe < 350, "{hm:?}");
    }
}
