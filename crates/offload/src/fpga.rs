//! FPGA SmartNIC backend: deep-pipelined spatial receive lanes.
//!
//! Modeled on the FPGA AI-NIC line of work (PAPERS.md): the receive
//! handler is synthesized as a fixed-function pipeline — header parse,
//! PSN decode, bitmap update, and placement engine as stages — so the
//! per-chunk cost is an initiation interval, not an instruction
//! stream. The trade: throughput is high and *flat* (no thread-scaling
//! curve to climb), but the bitstream region must be partially
//! reconfigured before first use, a multi-millisecond setup cost that
//! only amortizes over long-lived services.

use crate::backend::{
    BackendKind, BackendLimits, DatapathTransport, OffloadBackend, Placement, CALIBRATION_CHUNKS,
};
use crate::dpa::compile_host_model;
use crate::pipeline::PipelineModel;
use mcag_dpa::{ArrivalModel, DatapathMetrics};
use mcag_simnet::HostModel;

/// FPGA SmartNIC hardware parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaSpec {
    /// Receive pipeline instances on the device.
    pub lanes: u32,
    /// Datapath bus width per lane (bytes accepted per cycle).
    pub bytes_per_cycle: u32,
    /// Fabric clock in GHz (FPGA logic, not the NIC serdes).
    pub freq_ghz: f64,
    /// Pipeline stages between ingress and CQE visibility.
    pub fill_cycles: u64,
    /// Fixed per-chunk cycles (header parse, descriptor, CQE emit).
    pub overhead_cycles: u64,
    /// Partial-reconfiguration cost to load the collective's
    /// bitstream region and tables before first use (ns).
    pub reconfig_ns: u64,
}

impl FpgaSpec {
    /// A mid-size AI-NIC shell: 8 lanes × 512-bit bus at 350 MHz
    /// (~180 GB/s aggregate ingress — enough to hold the UD
    /// staging-copy pass under the DPA's NIC-DMA floor), 512-stage
    /// fill, 5 ms partial reconfiguration.
    pub fn default_nic() -> FpgaSpec {
        FpgaSpec {
            lanes: 8,
            bytes_per_cycle: 64,
            freq_ghz: 0.35,
            fill_cycles: 512,
            overhead_cycles: 16,
            reconfig_ns: 5_000_000,
        }
    }
}

/// The FPGA SmartNIC backend over a [`FpgaSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaBackend {
    spec: FpgaSpec,
}

impl FpgaBackend {
    /// Backend over the default shell.
    pub fn default_nic() -> FpgaBackend {
        FpgaBackend {
            spec: FpgaSpec::default_nic(),
        }
    }

    /// Backend over a custom shell.
    pub fn with_spec(spec: FpgaSpec) -> FpgaBackend {
        FpgaBackend { spec }
    }

    /// Hardware spec handle.
    pub fn spec(&self) -> &FpgaSpec {
        &self.spec
    }

    fn pipeline(&self) -> PipelineModel {
        PipelineModel {
            lanes: self.spec.lanes,
            bytes_per_cycle: self.spec.bytes_per_cycle,
            freq_ghz: self.spec.freq_ghz,
            fill_cycles: self.spec.fill_cycles,
            overhead_cycles: self.spec.overhead_cycles,
        }
    }
}

impl OffloadBackend for FpgaBackend {
    fn name(&self) -> &'static str {
        "FPGA SmartNIC"
    }

    fn kind(&self) -> BackendKind {
        BackendKind::FpgaSmartNic
    }

    fn placement(&self) -> Placement {
        Placement::EndpointNic
    }

    fn limits(&self) -> BackendLimits {
        BackendLimits {
            contexts: self.spec.lanes,
            aggregation_entries: None,
        }
    }

    fn setup_ns(&self) -> u64 {
        self.spec.reconfig_ns
    }

    fn datapath(
        &self,
        transport: DatapathTransport,
        threads: u32,
        chunk_bytes: usize,
        chunks: u64,
        arrival: ArrivalModel,
    ) -> DatapathMetrics {
        // UD staging→user copies are a second pass over the bus; UC
        // places user memory directly, exactly as on the DPA.
        let passes = match transport {
            DatapathTransport::Ud => 2,
            DatapathTransport::Uc => 1,
        };
        self.pipeline()
            .run(passes, threads, chunk_bytes, chunks, arrival)
    }

    fn host_model(&self, chunk_bytes: usize) -> HostModel {
        let m = self.datapath(
            DatapathTransport::Ud,
            self.spec.lanes,
            chunk_bytes,
            CALIBRATION_CHUNKS,
            ArrivalModel::Saturated,
        );
        compile_host_model(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpaBackend;

    #[test]
    fn flat_high_throughput_beats_the_dpa_at_4k() {
        // Initiation-interval bound vs barrel-thread bound: the
        // spatial pipeline holds a higher fixed rate per chunk.
        let fpga = FpgaBackend::default_nic().host_model(4096);
        let dpa = DpaBackend::bf3().host_model(4096);
        assert!(fpga.rx_proc_ns_per_cqe < dpa.rx_proc_ns_per_cqe);
    }

    #[test]
    fn reconfiguration_dominates_setup() {
        let be = FpgaBackend::default_nic();
        assert!(be.setup_ns() >= 1_000_000, "PR cost is milliseconds");
    }
}
