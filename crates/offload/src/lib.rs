//! # mcag-offload — pluggable in-network compute backends
//!
//! The paper offloads the Allgather receive datapath to exactly one
//! device: the BlueField-3 DPA barrel processor modeled in `mcag-dpa`.
//! The design-space question the paper leaves open is *where else* that
//! compute could run — and what each placement costs on the virtual
//! clock. This crate answers it behind one trait:
//!
//! * [`OffloadBackend`] — abstracts the offload target: per-chunk
//!   receive-handler latency/occupancy (via a [`DatapathMetrics`]
//!   producing cost model), placement ([`Placement`]: endpoint NIC,
//!   host core, or in-switch), one-time provisioning cost
//!   ([`OffloadBackend::setup_ns`]), and context/table capacity limits
//!   ([`BackendLimits`]);
//! * [`BackendKind::DpaBf3`] / [`BackendKind::HostCpu`] — the paper's
//!   two datapaths, re-homed from `mcag-dpa` **byte-identically**
//!   (they delegate straight to [`mcag_dpa::run_datapath`], so Table I
//!   reproduces bit-for-bit through the trait);
//! * [`BackendKind::FpgaSmartNic`] — a deep-pipelined spatial datapath
//!   (lanes × initiation interval): high fixed throughput, no
//!   instruction stream, but a large partial-reconfiguration setup
//!   cost (per the FPGA AI-NIC line of work in PAPERS.md);
//! * [`BackendKind::SharpSwitch`] — SHARP-style in-switch reduction:
//!   compute lives at fabric switches on the multicast tree
//!   (`mcag-simnet`'s `IncUp` route state), endpoints do descriptor
//!   work only, and the scarce resource is the bounded per-switch
//!   aggregation table (`FabricConfig::inc_table_capacity`), charged
//!   like the MGID pool.
//!
//! Backends compile down to an endpoint [`HostModel`] (what the DES
//! fabric charges per CQE) plus fabric-side knobs, so selecting one is
//! a [`FabricConfig`](mcag_simnet::FabricConfig) edit — the
//! `mcag-runtime` scheduler wires this through per-partition backend
//! assignments and `mcag-bench`'s `backendfigs` sweeps backend ×
//! collective × scale into `BENCH_backends.json`.
//!
//! [`HostModel`]: mcag_simnet::HostModel

#![warn(missing_docs)]

pub mod backend;
pub mod cpu;
pub mod dpa;
pub mod fpga;
pub mod pipeline;
pub mod reduce;
pub mod sharp;

pub use backend::{BackendKind, BackendLimits, DatapathTransport, OffloadBackend, Placement};
pub use cpu::HostCpuBackend;
pub use dpa::DpaBackend;
pub use fpga::{FpgaBackend, FpgaSpec};
pub use mcag_dpa::{ArrivalModel, DatapathMetrics};
pub use pipeline::PipelineModel;
pub use reduce::{flat_reduce, tree_reduce};
pub use sharp::{SharpBackend, SharpSpec};
