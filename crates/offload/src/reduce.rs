//! Reduction algebra behind partial-aggregate forwarding.
//!
//! An in-switch reduction is correct only because the operator is
//! associative and commutative: a switch may fold any subset of child
//! contributions into a partial aggregate and forward it up, and the
//! root still produces the same result as a flat endpoint fold. These
//! helpers state that algebra over the repo's canonical payload
//! digest (wrapping `u64` sums); the property test on random tree
//! shapes lives in `tests/backends_determinism.rs`, and the DES-level
//! twin (in-switch vs endpoint reduction on a live fabric) is checked
//! there too.

/// Endpoint reduction: one rank folds every contribution locally.
pub fn flat_reduce(values: &[u64]) -> u64 {
    values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v))
}

/// In-switch reduction over an arbitrary aggregation tree.
///
/// Node `i`'s parent is `parent[i]` with `parent[i] < i` (node 0 is
/// the root; `parent[0]` is ignored), and `values[i]` is the
/// contribution entering the tree at node `i` (0 for pure-relay
/// switches). Each node folds its children's partial aggregates into
/// its own contribution and forwards one value up — the
/// `reduce_at_switch` behaviour, minus the clock.
pub fn tree_reduce(parent: &[usize], values: &[u64]) -> u64 {
    assert_eq!(parent.len(), values.len());
    assert!(!values.is_empty(), "reduction over an empty tree");
    let mut acc = values.to_vec();
    for i in (1..acc.len()).rev() {
        let p = parent[i];
        assert!(p < i, "parent[{i}] = {p} is not above its child");
        acc[p] = acc[p].wrapping_add(acc[i]);
    }
    acc[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_and_chain_agree_with_flat() {
        let vals = [7u64, 11, u64::MAX - 2, 13];
        let star = [0usize, 0, 0, 0];
        let chain = [0usize, 0, 1, 2];
        assert_eq!(tree_reduce(&star, &vals), flat_reduce(&vals));
        assert_eq!(tree_reduce(&chain, &vals), flat_reduce(&vals));
    }

    #[test]
    fn relay_switches_contribute_nothing() {
        // root <- relay <- {leaf, leaf}: relay has value 0.
        let parent = [0usize, 0, 1, 1];
        let values = [5u64, 0, 9, 23];
        assert_eq!(tree_reduce(&parent, &values), 37);
    }

    #[test]
    #[should_panic]
    fn forward_edges_are_rejected() {
        tree_reduce(&[0, 2, 0], &[1, 2, 3]);
    }
}
