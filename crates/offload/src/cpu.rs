//! The host-CPU baseline, re-homed: a UCX-style progress thread on
//! one x86 core (the Fig. 5 comparison point).

use crate::backend::{
    BackendKind, BackendLimits, DatapathTransport, OffloadBackend, Placement, CALIBRATION_CHUNKS,
};
use crate::dpa::compile_host_model;
use mcag_dpa::{run_datapath, ArrivalModel, DatapathMetrics, DpaSpec, Kernel, KernelKind};
use mcag_simnet::HostModel;

/// Host-CPU backend: the same receive handlers run on a wide
/// out-of-order core with no hardware threads, including the
/// software-reliability and memcpy work of the UCX UD stack.
/// Delegates to [`mcag_dpa::run_datapath`] on
/// [`DpaSpec::host_cpu`], byte-identically to the pre-refactor
/// baseline figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCpuBackend {
    spec: DpaSpec,
}

impl HostCpuBackend {
    /// One 2.6 GHz x86 core, as in the DPA testbed host.
    pub fn new() -> HostCpuBackend {
        HostCpuBackend {
            spec: DpaSpec::host_cpu(),
        }
    }

    /// Hardware spec handle.
    pub fn spec(&self) -> &DpaSpec {
        &self.spec
    }
}

impl Default for HostCpuBackend {
    fn default() -> HostCpuBackend {
        HostCpuBackend::new()
    }
}

impl OffloadBackend for HostCpuBackend {
    fn name(&self) -> &'static str {
        "host CPU (UCX progress)"
    }

    fn kind(&self) -> BackendKind {
        BackendKind::HostCpu
    }

    fn placement(&self) -> Placement {
        Placement::HostCore
    }

    fn limits(&self) -> BackendLimits {
        BackendLimits {
            contexts: self.spec.total_threads(),
            aggregation_entries: None,
        }
    }

    fn setup_ns(&self) -> u64 {
        // The progress thread already runs; nothing to provision.
        0
    }

    fn datapath(
        &self,
        transport: DatapathTransport,
        threads: u32,
        chunk_bytes: usize,
        chunks: u64,
        arrival: ArrivalModel,
    ) -> DatapathMetrics {
        let kind = match transport {
            DatapathTransport::Ud => KernelKind::CpuUdUcx,
            DatapathTransport::Uc => KernelKind::CpuRcCustom,
        };
        run_datapath(
            &self.spec,
            &Kernel::new(kind),
            threads,
            chunk_bytes,
            chunks,
            arrival,
        )
    }

    fn host_model(&self, chunk_bytes: usize) -> HostModel {
        let m = self.datapath(
            DatapathTransport::Ud,
            1,
            chunk_bytes,
            CALIBRATION_CHUNKS,
            ArrivalModel::Saturated,
        );
        compile_host_model(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_context_and_no_fabric_state() {
        let be = HostCpuBackend::new();
        assert_eq!(be.limits().contexts, 1);
        assert_eq!(be.limits().aggregation_entries, None);
    }

    #[test]
    fn ud_pays_the_staging_copy() {
        let be = HostCpuBackend::new();
        let ud = be.datapath(
            DatapathTransport::Ud,
            1,
            4096,
            2_000,
            ArrivalModel::Saturated,
        );
        let uc = be.datapath(
            DatapathTransport::Uc,
            1,
            4096,
            2_000,
            ArrivalModel::Saturated,
        );
        assert!(ud.gib_per_s < uc.gib_per_s);
    }
}
