//! A shared analytic model of deep-pipelined spatial datapaths.
//!
//! FPGA SmartNIC lanes and switch aggregation units share one shape:
//! no instruction stream, a fixed-function pipeline that accepts one
//! bus-width word per cycle, a fill latency, and several parallel
//! lanes chunks round-robin across. The initiation interval — not an
//! IPC — sets throughput, which is why these devices hold a high
//! *fixed* rate where the DPA's barrel threads bend sub-linear.

use mcag_dpa::{ArrivalModel, DatapathMetrics};

/// Fixed-function pipeline: `lanes` parallel datapaths, each moving
/// `bytes_per_cycle` per cycle at `freq_ghz`, with `fill_cycles` of
/// latency through the stages and `overhead_cycles` of per-chunk
/// header/CQE work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    /// Parallel lanes (chunk `i` goes to lane `i mod lanes`).
    pub lanes: u32,
    /// Bus width: payload bytes accepted per cycle per lane.
    pub bytes_per_cycle: u32,
    /// Pipeline clock in GHz.
    pub freq_ghz: f64,
    /// Stages between ingress and CQE visibility (fill latency).
    pub fill_cycles: u64,
    /// Fixed per-chunk cycles (header parse, descriptor, CQE emit).
    pub overhead_cycles: u64,
}

impl PipelineModel {
    /// Initiation interval of one chunk on one lane, in cycles, for
    /// `passes` bus traversals (UC placement is one pass; a UD
    /// staging→user copy is a second).
    pub fn chunk_cycles(&self, passes: u32, chunk_bytes: usize) -> u64 {
        let words = (chunk_bytes as u64).div_ceil(self.bytes_per_cycle as u64);
        self.overhead_cycles + passes as u64 * words
    }

    /// Run `chunks` chunks of `chunk_bytes` across `threads` lanes
    /// (clamped to the model's lane count) under `arrival`, returning
    /// Table-I-style metrics. Deterministic pure f64, like
    /// [`mcag_dpa::run_datapath`]; a spatial pipeline retires no
    /// instructions, so `instr_per_cqe` and `ipc` report 0.
    pub fn run(
        &self,
        passes: u32,
        threads: u32,
        chunk_bytes: usize,
        chunks: u64,
        arrival: ArrivalModel,
    ) -> DatapathMetrics {
        assert!(threads >= 1, "need at least one lane");
        assert!(chunks >= 1);
        let lanes = threads.clamp(1, self.lanes) as usize;
        let cyc_ns = 1.0 / self.freq_ghz;
        let occ_cycles = self.chunk_cycles(passes, chunk_bytes);
        let occ_ns = occ_cycles as f64 * cyc_ns;
        let interval_ns = match arrival {
            ArrivalModel::Saturated => 0.0,
            ArrivalModel::LinkRate { gbps, header_bytes } => {
                (chunk_bytes + header_bytes) as f64 * 8.0 / gbps
            }
        };
        let mut lane_free = vec![0.0f64; lanes];
        let mut wall = 0.0f64;
        for i in 0..chunks {
            let lane = (i as usize) % lanes;
            let start = lane_free[lane].max(i as f64 * interval_ns);
            let done = start + occ_ns;
            lane_free[lane] = done;
            wall = wall.max(done);
        }
        // The last chunk still drains through the remaining stages.
        wall += self.fill_cycles as f64 * cyc_ns;
        let total_bytes = chunks as f64 * chunk_bytes as f64;
        DatapathMetrics {
            chunks,
            chunk_bytes,
            threads: lanes as u32,
            wall_ns: wall,
            goodput_gbps: total_bytes * 8.0 / wall,
            gib_per_s: total_bytes / (wall * 1e-9) / (1u64 << 30) as f64,
            chunks_per_sec: chunks as f64 / (wall * 1e-9),
            instr_per_cqe: 0.0,
            cycles_per_cqe: occ_cycles as f64,
            ipc: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PipelineModel {
        PipelineModel {
            lanes: 4,
            bytes_per_cycle: 64,
            freq_ghz: 0.35,
            fill_cycles: 512,
            overhead_cycles: 16,
        }
    }

    #[test]
    fn saturated_throughput_scales_with_lanes() {
        let m = model();
        let one = m.run(1, 1, 4096, 4_000, ArrivalModel::Saturated);
        let four = m.run(1, 4, 4096, 4_000, ArrivalModel::Saturated);
        assert!(four.goodput_gbps > 3.5 * one.goodput_gbps);
        // II-bound sanity: one lane moves 64 B/cycle at 350 MHz, and
        // 16 overhead cycles on 64 payload words cap efficiency at
        // 64/80 = 0.8 of the bus bound.
        let bound = 64.0 * 0.35 * 8.0; // Gbit/s
        assert!(one.goodput_gbps < 0.8 * bound);
        assert!(one.goodput_gbps > 0.75 * bound);
    }

    #[test]
    fn link_rate_caps_the_pipeline() {
        let m = model();
        let rate = ArrivalModel::LinkRate {
            gbps: 100.0,
            header_bytes: 64,
        };
        let out = m.run(1, 4, 4096, 4_000, rate);
        assert!(out.goodput_gbps <= 100.0);
        assert!(out.goodput_gbps > 90.0);
    }

    #[test]
    fn deterministic() {
        let m = model();
        let a = m.run(2, 3, 1024, 2_000, ArrivalModel::Saturated);
        let b = m.run(2, 3, 1024, 2_000, ArrivalModel::Saturated);
        assert_eq!(a, b);
    }
}
