//! Appendix B: time reduction from running multicast Allgather next to
//! in-network-compute Reduce-Scatter.
//!
//! With both collectives concurrently in flight over a full-duplex NIC,
//! the ring/ring configuration splits each direction of the NIC evenly
//! (eq. 1), while `{AG_mc, RS_inc}` gives Allgather's send path and
//! Reduce-Scatter's receive path the tiny `1/P` share they need and the
//! heavy directions the rest (eq. 2) — the two bandwidth-optimal
//! algorithms "don't share network bottlenecks" (Insight 2). The speedup
//! follows as `S = 2 − 2/P` (eq. 3).

use serde::{Deserialize, Serialize};

/// Fraction of each NIC direction used by each collective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthShares {
    /// Allgather share of the send direction.
    pub ag_send: f64,
    /// Allgather share of the receive direction.
    pub ag_recv: f64,
    /// Reduce-Scatter share of the send direction.
    pub rs_send: f64,
    /// Reduce-Scatter share of the receive direction.
    pub rs_recv: f64,
}

impl BandwidthShares {
    /// Equation 1: `{AG_ring, RS_ring}` — every path takes half.
    pub fn ring_ring(_p: u32) -> BandwidthShares {
        BandwidthShares {
            ag_send: 0.5,
            ag_recv: 0.5,
            rs_send: 0.5,
            rs_recv: 0.5,
        }
    }

    /// Equation 2: `{AG_mc, RS_inc}` — AG sends `N` against RS's
    /// `N(P−1)`, and symmetrically on the receive path.
    pub fn mcast_inc(p: u32) -> BandwidthShares {
        assert!(p >= 2);
        let small = 1.0 / p as f64;
        BandwidthShares {
            ag_send: small,
            ag_recv: 1.0 - small,
            rs_send: 1.0 - small,
            rs_recv: small,
        }
    }
}

/// Equation 3: speedup of `{AG_mc, RS_inc}` over `{AG_ring, RS_ring}`
/// for `P` ranks: `S = 2 − 2/P`.
pub fn concurrent_speedup(p: u32) -> f64 {
    assert!(p >= 2);
    2.0 - 2.0 / p as f64
}

/// Completion-time model behind eq. 3: time to move the `N(P−1)` heavy
/// direction at the given bandwidth share of `bnic_bytes_per_s`.
pub fn pair_completion_secs(
    p: u32,
    n_bytes: u64,
    bnic_bytes_per_s: f64,
    shares: &BandwidthShares,
) -> f64 {
    assert!(p >= 2);
    let heavy = (n_bytes * (p as u64 - 1)) as f64;
    // AG is bound by its receive path, RS by its send path; the pair
    // completes when the slower of the two finishes.
    let t_ag = heavy / (shares.ag_recv * bnic_bytes_per_s);
    let t_rs = heavy / (shares.rs_send * bnic_bytes_per_s);
    t_ag.max(t_rs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn speedup_limits() {
        assert!((concurrent_speedup(2) - 1.0).abs() < 1e-12);
        assert!((concurrent_speedup(4) - 1.5).abs() < 1e-12);
        assert!((concurrent_speedup(1024) - 1.998).abs() < 1e-3);
    }

    #[test]
    fn shares_are_consistent() {
        let s = BandwidthShares::mcast_inc(16);
        assert!((s.ag_send + s.rs_send - 1.0).abs() < 1e-12);
        assert!((s.ag_recv + s.rs_recv - 1.0).abs() < 1e-12);
        assert!((s.ag_send - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn completion_ratio_equals_eq3() {
        for p in [2u32, 4, 16, 188, 1024] {
            let b = 25e9; // 200 Gbit/s
            let n = 8 << 20;
            let t_ring = pair_completion_secs(p, n, b, &BandwidthShares::ring_ring(p));
            let t_opt = pair_completion_secs(p, n, b, &BandwidthShares::mcast_inc(p));
            let s = t_ring / t_opt;
            assert!(
                (s - concurrent_speedup(p)).abs() < 1e-9,
                "p={p}: ratio {s} vs formula {}",
                concurrent_speedup(p)
            );
        }
    }

    proptest! {
        #[test]
        fn speedup_monotonic_and_bounded(p in 2u32..100_000) {
            let s = concurrent_speedup(p);
            prop_assert!((1.0..2.0).contains(&s));
            prop_assert!(concurrent_speedup(p + 1) >= s);
        }
    }
}
