//! Fig. 7: how many immediate-data bits the PSN needs, and what that
//! implies for the maximum Allgather receive buffer and the reliability
//! bitmap footprint.
//!
//! With `b` PSN bits and MTU-sized chunks, the receive buffer can span at
//! most `2^b · MTU` bytes and its bitmap occupies `2^b / 8` bytes. The
//! bitmap is the only protocol state that grows with the buffer
//! (Section III-D), so it must fit the 1.5 MB DPA LLC — which the paper
//! notes is enough to address "approximately 50 GB".

use serde::{Deserialize, Serialize};

/// BlueField-3 DPA last-level cache: 1.5 MB.
pub const DPA_LLC_BYTES: u64 = 3 << 19;

/// Device memory reference lines drawn in Fig. 7.
pub const GPU_MEMORY_REFS: &[(&str, u64)] = &[
    ("A100-40G", 40_000_000_000),
    ("A100-80G", 80_000_000_000),
    ("H100-94G", 94_000_000_000),
];

/// Sizing at one PSN bit-width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitmapSizing {
    /// PSN bits allocated in the 32-bit immediate.
    pub psn_bits: u32,
    /// Bits left for the collective id.
    pub coll_bits: u32,
    /// Maximum addressable receive buffer (bytes).
    pub max_recv_buffer: u64,
    /// Bitmap footprint (bytes).
    pub bitmap_bytes: u64,
}

impl BitmapSizing {
    /// Sizing for `psn_bits` PSN bits with `mtu` chunks.
    pub fn new(psn_bits: u32, mtu: usize) -> BitmapSizing {
        assert!((1..=32).contains(&psn_bits));
        let chunks = 1u64 << psn_bits;
        BitmapSizing {
            psn_bits,
            coll_bits: 32 - psn_bits,
            max_recv_buffer: chunks * mtu as u64,
            bitmap_bytes: chunks.div_ceil(8),
        }
    }

    /// Does the bitmap fit a cache/memory of `capacity` bytes?
    pub fn fits(&self, capacity: u64) -> bool {
        self.bitmap_bytes <= capacity
    }
}

/// The full Fig. 7 sweep over PSN widths.
pub fn fig7_sweep(mtu: usize) -> Vec<BitmapSizing> {
    (10..=32).map(|b| BitmapSizing::new(b, mtu)).collect()
}

/// Per-communicator protocol state (Section III-D memory footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommFootprint {
    /// Reliability bitmap bytes (the only state growing with the buffer).
    pub bitmap_bytes: u64,
    /// Fixed per-communicator context (QPs, rings, counters).
    pub ctx_bytes: u64,
}

impl CommFootprint {
    /// The paper's Section III-D(d) assumptions: a 64 KiB bitmap (16 GB
    /// receive buffer at 32 KiB chunk granularity) and 16 KiB of context.
    pub fn paper_example() -> CommFootprint {
        CommFootprint {
            bitmap_bytes: 64 << 10,
            ctx_bytes: 16 << 10,
        }
    }

    /// Footprint for a receive buffer of `recv_bytes` at `mtu` chunks.
    pub fn for_buffer(recv_bytes: u64, mtu: usize) -> CommFootprint {
        CommFootprint {
            bitmap_bytes: recv_bytes.div_ceil(mtu as u64).div_ceil(8),
            ctx_bytes: 16 << 10,
        }
    }

    /// Total bytes per communicator.
    pub fn total(&self) -> u64 {
        self.bitmap_bytes + self.ctx_bytes
    }

    /// How many such communicators fit in a cache of `capacity` bytes.
    pub fn fit_in(&self, capacity: u64) -> u64 {
        capacity / self.total()
    }
}

/// Largest PSN width whose bitmap fits `capacity` bytes.
pub fn max_psn_bits_for(capacity: u64, mtu: usize) -> BitmapSizing {
    (1..=32)
        .map(|b| BitmapSizing::new(b, mtu))
        .take_while(|s| s.fits(capacity))
        .last()
        .expect("even 2 chunks don't fit?")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_50gb_claim() {
        // "the bitmap size that fits in the DPA LLC (1.5 MB) will allow
        // addressing the Allgather receive buffer of approximately 50 GB"
        let s = max_psn_bits_for(DPA_LLC_BYTES, 4096);
        assert_eq!(s.psn_bits, 23, "2^23 chunks = 1 MiB bitmap fits 1.5 MB");
        assert_eq!(s.max_recv_buffer, 1u64 << 35); // 32 GiB with pow-2 bits

        // The paper's ~50 GB comes from the non-power-of-two fill of the
        // LLC: 1.5 MB of bitmap = 12.58 M chunks = 51.5 GB.
        let chunks = DPA_LLC_BYTES * 8;
        let bytes = chunks * 4096;
        assert!((49.0e9..53.0e9).contains(&(bytes as f64)), "{bytes}");
    }

    #[test]
    fn paper_16gb_communicator_example() {
        // Section III-D(d): "Assuming 64 KiB bitmap (i.e., up to 16 GB
        // Allgather receive buffer)" — 64 KiB of bitmap tracks 512 Ki
        // chunks = 2 GiB at 4 KiB MTU; 16 GB needs a 32 KiB chunk unit.
        // We verify the structural relation rather than the (loose)
        // prose: buffer = bitmap_bits * MTU.
        let s = BitmapSizing::new(19, 4096); // 512 Ki chunks
        assert_eq!(s.bitmap_bytes, 64 << 10);
        assert_eq!(s.max_recv_buffer, 2 << 30);
        let s = BitmapSizing::new(19, 32 << 10);
        assert_eq!(s.max_recv_buffer, 16 << 30);
    }

    #[test]
    fn default_layout_covers_gpu_memory() {
        // 24 PSN bits at 4 KiB address 64 GiB — enough for any current
        // GPU's HBM, with 8 bits to spare for collective ids.
        let s = BitmapSizing::new(24, 4096);
        assert_eq!(s.coll_bits, 8);
        assert!(s.max_recv_buffer >= 64 * (1 << 30));
        for &(_, mem) in GPU_MEMORY_REFS {
            if mem <= 64 * (1u64 << 30) {
                assert!(s.max_recv_buffer >= mem);
            }
        }
    }

    #[test]
    fn sixteen_communicators_fit_in_the_llc() {
        // Section III-D(d): "more than 16 communicators will fit in the
        // DPA LLC" with 64 KiB bitmaps and 16 KiB contexts.
        let fp = CommFootprint::paper_example();
        assert!(
            fp.fit_in(DPA_LLC_BYTES) > 16,
            "{}",
            fp.fit_in(DPA_LLC_BYTES)
        );
        // An 8 MiB-per-rank, 188-rank Allgather at 4 KiB chunks:
        // 1.5 GiB receive buffer -> 48 KiB bitmap; dozens fit.
        let big = CommFootprint::for_buffer(188 * (8 << 20), 4096);
        assert_eq!(big.bitmap_bytes, 48_128);
        assert!(big.fit_in(DPA_LLC_BYTES) >= 24);
    }

    #[test]
    fn sweep_is_monotone() {
        let sweep = fig7_sweep(4096);
        for w in sweep.windows(2) {
            assert!(w[1].max_recv_buffer == 2 * w[0].max_recv_buffer);
            assert!(w[1].bitmap_bytes == 2 * w[0].bitmap_bytes);
        }
    }
}
