//! NCCL-convention bandwidth reporting: algorithmic vs bus bandwidth.
//!
//! `nccl-tests` reports two numbers per collective. **Algorithmic
//! bandwidth** is what the application feels: the collective's data
//! size over its completion time. **Bus bandwidth** rescales algbw by
//! a collective-specific factor so the number is comparable across
//! collectives and to the hardware's link rate — it answers "how hard
//! did the wires work", independent of how much of the traffic was
//! algorithmically necessary. The factors below are the nccl-tests
//! conventions; `backendfigs` and `runtimefigs` report through these
//! helpers instead of ad-hoc Tbit/s math.

/// Collective shape, for the bus-bandwidth factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveOp {
    /// One root's buffer to every rank.
    Broadcast,
    /// Every rank's buffer to every rank.
    Allgather,
    /// Every rank contributes, each rank keeps one reduced shard.
    ReduceScatter,
    /// Reduce + broadcast of the result.
    AllReduce,
}

impl CollectiveOp {
    /// Bus-bandwidth factor at `p` ranks: `busbw = algbw × factor`
    /// (nccl-tests conventions — AG/RS `(P−1)/P`, AllReduce
    /// `2(P−1)/P`, Broadcast 1).
    pub fn bus_factor(self, p: u32) -> f64 {
        assert!(p >= 1, "collective over zero ranks");
        let p = p as f64;
        match self {
            CollectiveOp::Broadcast => 1.0,
            CollectiveOp::Allgather | CollectiveOp::ReduceScatter => (p - 1.0) / p,
            CollectiveOp::AllReduce => 2.0 * (p - 1.0) / p,
        }
    }
}

/// Algorithmic bandwidth in Gbit/s: `bytes` of collective data moved
/// end-to-end in `ns` nanoseconds. For an Allgather, `bytes` is the
/// full gathered buffer (`N·P`); for Broadcast, the root's buffer;
/// for Reduce-Scatter, the input vector (`N·P`).
pub fn algbw_gbps(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / ns as f64
}

/// Bus bandwidth in Gbit/s: [`algbw_gbps`] rescaled by the
/// collective's factor at `p` ranks.
pub fn busbw_gbps(op: CollectiveOp, p: u32, bytes: u64, ns: u64) -> f64 {
    algbw_gbps(bytes, ns) * op.bus_factor(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algbw_units() {
        // 125 MB in 1 ms = 1 Tbit/s = 1000 Gbit/s.
        assert!((algbw_gbps(125_000_000, 1_000_000) - 1000.0).abs() < 1e-9);
        assert_eq!(algbw_gbps(1, 0), 0.0);
    }

    #[test]
    fn nccl_factors() {
        assert_eq!(CollectiveOp::Broadcast.bus_factor(8), 1.0);
        assert!((CollectiveOp::Allgather.bus_factor(8) - 7.0 / 8.0).abs() < 1e-12);
        assert!((CollectiveOp::ReduceScatter.bus_factor(2) - 0.5).abs() < 1e-12);
        assert!((CollectiveOp::AllReduce.bus_factor(8) - 14.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn busbw_composes() {
        let alg = algbw_gbps(1 << 20, 10_000);
        let bus = busbw_gbps(CollectiveOp::Allgather, 4, 1 << 20, 10_000);
        assert!((bus - alg * 0.75).abs() < 1e-9);
    }
}
