//! Fig. 3: data movement at the training-node boundary for the two
//! `{Allgather, Reduce-Scatter}` configurations.
//!
//! Ring algorithms load both NIC directions with `N(P−1)` for each
//! collective; the `{multicast AG, in-network RS}` pair moves the same
//! application data with `N` on AG's send path and RS's receive path —
//! the bandwidth-optimal pair complements rather than competes.

use serde::{Deserialize, Serialize};

/// Per-NIC byte volumes of one collective at one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeBoundary {
    /// Bytes leaving the NIC.
    pub send_bytes: u64,
    /// Bytes entering the NIC.
    pub recv_bytes: u64,
}

/// Collectives appearing in Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Collective {
    /// Ring Allgather.
    AllgatherRing,
    /// Multicast Allgather (this paper).
    AllgatherMcast,
    /// Ring Reduce-Scatter.
    ReduceScatterRing,
    /// In-network-compute Reduce-Scatter (SHARP-style).
    ReduceScatterInc,
}

/// Fig. 3's per-collective node-boundary volumes for `p` ranks and `n`
/// bytes per shard.
pub fn node_boundary(c: Collective, p: u32, n: u64) -> NodeBoundary {
    assert!(p >= 2);
    let heavy = n * (p as u64 - 1);
    match c {
        Collective::AllgatherRing => NodeBoundary {
            send_bytes: heavy,
            recv_bytes: heavy,
        },
        Collective::AllgatherMcast => NodeBoundary {
            send_bytes: n,
            recv_bytes: heavy,
        },
        Collective::ReduceScatterRing => NodeBoundary {
            send_bytes: heavy,
            recv_bytes: heavy,
        },
        Collective::ReduceScatterInc => NodeBoundary {
            send_bytes: heavy,
            recv_bytes: n,
        },
    }
}

/// Combined NIC load of a concurrently-running pair.
pub fn pair_boundary(a: Collective, b: Collective, p: u32, n: u64) -> NodeBoundary {
    let (x, y) = (node_boundary(a, p, n), node_boundary(b, p, n));
    NodeBoundary {
        send_bytes: x.send_bytes + y.send_bytes,
        recv_bytes: x.recv_bytes + y.recv_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_volumes() {
        let (p, n) = (16u32, 1u64 << 20);
        let heavy = n * 15;
        // Ring + Ring: both directions carry 2·N(P−1).
        let rr = pair_boundary(
            Collective::AllgatherRing,
            Collective::ReduceScatterRing,
            p,
            n,
        );
        assert_eq!(rr.send_bytes, 2 * heavy);
        assert_eq!(rr.recv_bytes, 2 * heavy);
        // INC + Mcast: each direction carries N(P−1) + N.
        let opt = pair_boundary(
            Collective::AllgatherMcast,
            Collective::ReduceScatterInc,
            p,
            n,
        );
        assert_eq!(opt.send_bytes, heavy + n);
        assert_eq!(opt.recv_bytes, heavy + n);
        // The optimal pair moves ~half the bytes through the NIC.
        let ratio = rr.send_bytes as f64 / opt.send_bytes as f64;
        assert!((ratio - 2.0 * 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_pair_does_not_share_bottlenecks() {
        // Insight 2: AG_mc is receive-bound, RS_inc is send-bound.
        let (p, n) = (8u32, 4096u64);
        let ag = node_boundary(Collective::AllgatherMcast, p, n);
        let rs = node_boundary(Collective::ReduceScatterInc, p, n);
        assert!(ag.recv_bytes > ag.send_bytes);
        assert!(rs.send_bytes > rs.recv_bytes);
    }
}
