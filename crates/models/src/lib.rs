//! # mcag-models — analytic cost models from the paper
//!
//! * [`speedup`] — Appendix B: bandwidth shares of concurrent
//!   `{Allgather, Reduce-Scatter}` pairs and the `S = 2 − 2/P` speedup.
//! * [`sizing`] — Fig. 7: PSN bit budget vs. addressable receive buffer
//!   and bitmap footprint against the DPA LLC and GPU memory.
//! * [`traffic`] — Fig. 2: exact link-byte counts of multicast vs. P2P
//!   Allgather/Broadcast schedules on a modeled fat-tree (computed from
//!   the real topology and routing, not a back-of-envelope formula).
//! * [`node_boundary`] — Fig. 3: per-NIC send/receive volumes of the
//!   `{ring, ring}` vs. `{multicast, in-network-compute}` configurations.
//! * [`bandwidth`] — NCCL-convention algorithmic/bus bandwidth
//!   reporting (`busbw = algbw × collective factor`), shared by the
//!   bench generators.

#![warn(missing_docs)]

pub mod bandwidth;
pub mod node_boundary;
pub mod sizing;
pub mod speedup;
pub mod traffic;

pub use bandwidth::{algbw_gbps, busbw_gbps, CollectiveOp};
pub use sizing::{BitmapSizing, DPA_LLC_BYTES};
pub use speedup::{concurrent_speedup, BandwidthShares};
pub use traffic::{allgather_traffic, broadcast_traffic, TrafficModel};
