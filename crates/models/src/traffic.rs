//! Fig. 2: the theoretical traffic model — total bytes crossing fabric
//! links for multicast vs. point-to-point collectives on a fat-tree.
//!
//! Rather than a closed-form approximation, we compute exact link-byte
//! counts on the modeled topology: P2P schedules contribute
//! `bytes × |route(src → dst)|` per message (deterministic up/down
//! routing), and a multicast Broadcast contributes `bytes` on every edge
//! of its group's spanning tree — each byte crosses each link exactly
//! once, which *is* the bandwidth-optimality property.

use mcag_simnet::mcast::McastTree;
use mcag_simnet::routing::{self, RouteMode};
use mcag_simnet::Topology;
use mcag_verbs::{McastGroupId, Rank};
use serde::{Deserialize, Serialize};

/// Traffic totals for one collective on one topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// Total bytes crossing all links.
    pub total_link_bytes: u64,
    /// Bytes injected by hosts (send-path volume).
    pub host_send_bytes: u64,
    /// The maximum bytes any single link carries.
    pub max_link_bytes: u64,
}

fn rng() -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(0)
}

/// Traffic of a P2P schedule: `(src, dst, bytes)` message list.
pub fn p2p_traffic(topo: &Topology, msgs: impl Iterator<Item = (Rank, Rank, u64)>) -> TrafficModel {
    let mut per_link = vec![0u64; topo.num_links()];
    let mut host_send = 0u64;
    let mut r = rng();
    for (src, dst, bytes) in msgs {
        host_send += bytes;
        for l in routing::route(topo, src, dst, RouteMode::Deterministic, 0, &mut r) {
            per_link[l.idx()] += bytes;
        }
    }
    TrafficModel {
        total_link_bytes: per_link.iter().sum(),
        host_send_bytes: host_send,
        max_link_bytes: per_link.iter().copied().max().unwrap_or(0),
    }
}

/// Traffic of one multicast Broadcast of `bytes` to all `p` ranks.
pub fn broadcast_traffic(topo: &Topology, bytes: u64) -> TrafficModel {
    let members: Vec<Rank> = (0..topo.num_hosts() as u32).map(Rank).collect();
    let tree = McastTree::build(topo, McastGroupId(0), &members);
    TrafficModel {
        // Flooding traverses every tree edge exactly once per datagram.
        total_link_bytes: tree.num_edges() as u64 * bytes,
        host_send_bytes: bytes,
        max_link_bytes: bytes,
    }
}

/// Which Allgather algorithm to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllgatherAlgo {
    /// Multicast composition of Broadcasts (this paper).
    Mcast,
    /// Ring: P−1 neighbor messages of `N` per rank.
    Ring,
    /// Linear: direct send to every peer.
    Linear,
    /// Recursive doubling (P must be a power of two).
    RecursiveDoubling,
}

/// Fig. 2's quantity: total link bytes of one Allgather of `n` bytes per
/// rank over all `P` hosts of `topo`.
pub fn allgather_traffic(topo: &Topology, algo: AllgatherAlgo, n: u64) -> TrafficModel {
    let p = topo.num_hosts() as u32;
    match algo {
        AllgatherAlgo::Mcast => {
            let per_bcast = broadcast_traffic(topo, n);
            TrafficModel {
                total_link_bytes: per_bcast.total_link_bytes * p as u64,
                host_send_bytes: n * p as u64,
                max_link_bytes: n * p as u64, // host downlinks carry all blocks
            }
        }
        AllgatherAlgo::Ring => p2p_traffic(
            topo,
            (0..p).flat_map(|r| {
                let right = Rank(r).ring_right(p);
                // P-1 steps, N bytes each, always to the right neighbor.
                std::iter::repeat_n((Rank(r), right, n), p as usize - 1)
            }),
        ),
        AllgatherAlgo::Linear => p2p_traffic(
            topo,
            (0..p).flat_map(move |r| {
                (0..p)
                    .filter(move |&d| d != r)
                    .map(move |d| (Rank(r), Rank(d), n))
            }),
        ),
        AllgatherAlgo::RecursiveDoubling => {
            assert!(p.is_power_of_two(), "recursive doubling needs 2^k ranks");
            p2p_traffic(
                topo,
                (0..p).flat_map(move |r| {
                    let mut msgs = Vec::new();
                    let mut dist = 1u32;
                    let mut have = 1u64;
                    while dist < p {
                        msgs.push((Rank(r), Rank(r ^ dist), n * have));
                        have *= 2;
                        dist <<= 1;
                    }
                    msgs
                }),
            )
        }
    }
}

/// The savings factor Fig. 2 reports: P2P traffic over multicast traffic.
pub fn savings_factor(topo: &Topology, algo: AllgatherAlgo, n: u64) -> f64 {
    let p2p = allgather_traffic(topo, algo, n);
    let mc = allgather_traffic(topo, AllgatherAlgo::Mcast, n);
    p2p.total_link_bytes as f64 / mc.total_link_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::LinkRate;

    fn fig2_topo() -> Topology {
        Topology::fig2_cluster(LinkRate::NDR_400G)
    }

    #[test]
    fn mcast_send_path_is_constant_in_p() {
        // Insight 1: per-process send volume is N for multicast,
        // N(P-1) for any unicast algorithm.
        let topo = Topology::ucc_testbed();
        let n = 1 << 20;
        let mc = allgather_traffic(&topo, AllgatherAlgo::Mcast, n);
        let ring = allgather_traffic(&topo, AllgatherAlgo::Ring, n);
        assert_eq!(mc.host_send_bytes, n * 188);
        assert_eq!(ring.host_send_bytes, n * 188 * 187);
    }

    #[test]
    fn fig2_savings_between_1_5x_and_3x() {
        // On the 1024-node radix-32 fat-tree the paper models ~2x wire
        // savings for Allgather (Fig. 2 / Fig. 12 measure 1.5-2x).
        let topo = fig2_topo();
        let s_ring = savings_factor(&topo, AllgatherAlgo::Ring, 1 << 20);
        assert!(
            (1.3..4.0).contains(&s_ring),
            "ring/mcast savings = {s_ring}"
        );
        let s_lin = savings_factor(&topo, AllgatherAlgo::Linear, 1 << 20);
        assert!(s_lin >= s_ring, "linear must be at least as wasteful");
    }

    #[test]
    fn broadcast_each_link_once() {
        let topo = Topology::ucc_testbed();
        let bc = broadcast_traffic(&topo, 4096);
        assert_eq!(bc.max_link_bytes, 4096);
        // Tree spans 188 hosts + at most 18 switches: ≤ 205 edges.
        assert!(bc.total_link_bytes <= 4096 * 206);
        assert!(bc.total_link_bytes >= 4096 * 188);
    }

    #[test]
    fn ring_traffic_exact_on_star() {
        // On a single switch every neighbor route is 2 links, so ring AG
        // moves exactly 2·P·(P−1)·N link-bytes.
        let topo = Topology::single_switch(8, LinkRate::CX3_56G, 100);
        let t = allgather_traffic(&topo, AllgatherAlgo::Ring, 1000);
        assert_eq!(t.total_link_bytes, 2 * 8 * 7 * 1000);
        // Multicast: uplink once per root + 7 downlink copies = P·(1+7)·N.
        let m = allgather_traffic(&topo, AllgatherAlgo::Mcast, 1000);
        assert_eq!(m.total_link_bytes, 8 * 8 * 1000);
        assert!((t.total_link_bytes as f64 / m.total_link_bytes as f64 - 1.75).abs() < 1e-9);
    }

    #[test]
    fn recursive_doubling_matches_ring_volume_on_star() {
        let topo = Topology::single_switch(16, LinkRate::CX3_56G, 100);
        let rd = allgather_traffic(&topo, AllgatherAlgo::RecursiveDoubling, 1000);
        let ring = allgather_traffic(&topo, AllgatherAlgo::Ring, 1000);
        // Same total bytes sent per rank (N(P-1)); on a star all routes
        // are 2 hops, so totals match exactly.
        assert_eq!(rd.total_link_bytes, ring.total_link_bytes);
    }

    #[test]
    fn savings_grow_with_cluster_size() {
        let n = 1 << 20;
        let small = savings_factor(
            &Topology::fat_tree_two_level(32, 4, 2, 1, LinkRate::CX3_56G, 100),
            AllgatherAlgo::Ring,
            n,
        );
        let large = savings_factor(&fig2_topo(), AllgatherAlgo::Ring, n);
        assert!(
            large >= small * 0.9,
            "larger fabrics shouldn't save much less: {small} -> {large}"
        );
    }
}
