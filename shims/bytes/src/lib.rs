//! Offline stand-in for the `bytes` crate: an `Arc`-backed, cheaply
//! cloneable, sliceable immutable byte buffer with the subset of the `Bytes`
//! API the workspace uses.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer; clones and slices are O(1)
/// (plus the refcount bump) and share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wrap a static slice (copied into shared storage; the real crate
    /// borrows, but callers only observe the bytes).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds for {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn eq_compares_contents() {
        assert_eq!(Bytes::from(vec![9, 9]), Bytes::copy_from_slice(&[9, 9]));
    }
}
