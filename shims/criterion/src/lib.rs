//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's `harness = false` bench targets
//! use — `Criterion`, `benchmark_group`, `Bencher::iter`, `Throughput`,
//! `black_box`, `criterion_group!`, `criterion_main!` — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! `bench_function` runs a short warm-up plus a fixed number of timed
//! iterations and prints the mean per-iteration time, so `cargo bench` gives
//! usable (if unstatistical) numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accept (and ignore) CLI arguments; present for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), 10, None, f);
        self
    }
}

/// A named collection of benchmarks sharing sample-count/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accept (and ignore) a measurement-time hint.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accept (and ignore) a warm-up-time hint.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.samples, self.throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, running it once per sample after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    tp: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean_ns = if b.iters == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iters as f64
    };
    let rate = match tp {
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!(
                "  {:.2} GiB/s",
                n as f64 / mean_ns * 1e9 / (1u64 << 30) as f64
            )
        }
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  {:.2} Melem/s", n as f64 / mean_ns * 1e3)
        }
        _ => String::new(),
    };
    println!("bench {name:<60} {:>12.1} ns/iter{rate}", mean_ns);
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups (for `harness = false` targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn bench_function_direct() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }
}
