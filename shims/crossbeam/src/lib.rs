//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, implemented over `std::sync::mpsc`.
//! The workspace uses single-consumer channels exclusively, so mpsc semantics
//! match; `Sender` is cloneable and both endpoints are `Send`.

/// Channels mirroring `crossbeam::channel`'s API surface used here.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking on a full bounded channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.rx.recv().map_err(|_| RecvTimeoutError::Disconnected)
        }

        /// Block up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Drain until disconnected (blocking iterator).
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.rx.iter()
        }

        /// Drain whatever is currently queued without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.rx.try_iter()
        }
    }

    /// Create a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Create a channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41u32).unwrap();
            tx.clone().send(42).unwrap();
            assert_eq!(rx.try_recv(), Ok(41));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_timeout() {
            let (_tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
