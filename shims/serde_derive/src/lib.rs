//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata on
//! plain data types — nothing actually serializes through serde at runtime —
//! so these derives validate the attribute position and expand to nothing.
//! Swap in the real `serde`/`serde_derive` once the build environment has
//! registry access.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
