//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the (small) subset of the `rand` 0.9 API the workspace uses, backed by a
//! deterministic SplitMix64 generator. Everything in the workspace seeds its
//! RNGs explicitly, so determinism is a feature here, not a limitation.

/// A source of random `u64`s. Object-safe so it can sit behind `&mut dyn Rng`.
pub trait Rng {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can be sampled uniformly. Implemented for half-open and
/// inclusive integer ranges.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Types drawable uniformly from their whole domain (`rng.random::<T>()`).
pub trait Random {
    /// Draw an unconstrained value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

/// 53 random mantissa bits -> uniform `f64` in `[0, 1)`. The single source
/// of truth for the int-to-unit-float conversion in this shim.
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Convenience sampling methods, mirroring `rand`'s `Rng` extension surface.
pub trait RngExt: Rng {
    /// Draw an unconstrained value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Uniform draw from an integer range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]: {p}");
        unit_f64(self) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        unit_f64(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice helpers (`shuffle`, `choose`), mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(3u32..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
