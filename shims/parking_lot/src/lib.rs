//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives and
//! strips lock poisoning so `lock()` returns the guard directly, matching
//! parking_lot's signatures for the subset this workspace uses.

use std::sync;

/// Mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
