//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this shim implements a
//! deterministic, seed-driven property runner with the subset of the real
//! API the workspace uses:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strat, y: Ty) {..} }`
//! * strategies: integer/float ranges, `any::<T>()`, tuples, `.prop_map`,
//!   and `prop::collection::vec`
//! * assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! case index so it can be replayed (cases are a pure function of the index).

/// Deterministic case-level RNG and run configuration.
pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps offline CI quick while
            // still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generator; each case index maps to an independent stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th generated input of a property.
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: 0xA076_1D64_78BD_642F ^ (u64::from(case) << 17),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128) - (self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as u128 + v) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as u128) - (start as u128) + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as u128 + v) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.next_unit() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_unit()
        }
    }

    /// Strategy over the whole domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    fn sample_len(len: &core::ops::Range<usize>, rng: &mut TestRng) -> usize {
        assert!(len.start < len.end, "empty collection size range");
        len.start + (rng.next_u64() as usize) % (len.end - len.start)
    }

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = sample_len(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `vec(element_strategy, size_range)` as in `proptest::collection`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// Strategy producing `HashSet`s with sizes drawn from a range.
    ///
    /// Duplicates drawn from the element strategy collapse, so the resulting
    /// set may be smaller than the drawn size — same contract as proptest.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: core::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `hash_set(element_strategy, size_range)` as in `proptest::collection`.
    pub fn hash_set<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: core::hash::Hash + Eq,
    {
        HashSetStrategy { elem, len }
    }
}

/// Glob-import surface matching `proptest::prelude::*` usage in this tree.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module alias (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property; failure panics with the standard message format.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current generated case when its precondition fails.
///
/// Expands to an early `return` from the per-case closure the runner wraps
/// each body in, so it rejects the whole case even when written inside a
/// loop in the property body (matching real proptest's semantics).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Define deterministic property tests. See the crate docs for the accepted
/// grammar (a strict subset of real proptest's).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!(
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                // Closure per case so `prop_assume!` can reject the whole
                // case with `return` from anywhere in the body.
                let mut __case_fn = || {
                    $crate::__proptest_bind!(@bind __rng; $($params)*);
                    $body
                };
                __case_fn();
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    (@bind $rng:ident; ) => {};
    (@bind $rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    (@bind $rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_any(x in 3usize..10, f in 0.25f64..0.75, b: bool, s: u64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            let _ = (b, s);
        }

        #[test]
        fn tuples_map_and_vec(
            pair in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b),
            v in prop::collection::vec(any::<bool>(), 1..50),
        ) {
            prop_assert!((11..25).contains(&pair));
            prop_assert!(!v.is_empty() && v.len() < 50);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n > 0);
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0u64..1000;
        let a = s.sample(&mut TestRng::for_case(5));
        let b = s.sample(&mut TestRng::for_case(5));
        assert_eq!(a, b);
    }
}
