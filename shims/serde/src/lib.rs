//! Offline stand-in for `serde`.
//!
//! Provides marker `Serialize`/`Deserialize` traits and re-exports the no-op
//! derives from the sibling `serde_derive` shim. The workspace derives these
//! traits on data types for forward compatibility but never serializes at
//! runtime, so empty traits are sufficient for a green build.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
