//! # mcast-allgather
//!
//! Workspace facade for the reproduction of *"Network-Offloaded
//! Bandwidth-Optimal Broadcast and Allgather for Distributed AI"*
//! (Khalilov et al., SC 2024): re-exports every component so examples,
//! integration tests, and downstream users need a single dependency.
//!
//! * [`core`] — the multicast Broadcast/Allgather protocol and drivers.
//! * [`runtime`] — the multi-tenant collective runtime: multicast-group
//!   pooling, admission control, and fair job scheduling.
//! * [`exec`] — the deterministic fork-join executor parallelizing
//!   simulation sweeps and runtime batch waves (slot-ordered `par_map`,
//!   largest-first `par_map_ordered`).
//! * [`faults`] — seeded fault-injection plans (degraded links,
//!   flapping ports, switch failures) compiled to link-state schedules
//!   the fabric enforces.
//! * [`simnet`] — the discrete-event RDMA fabric (fat-trees, multicast
//!   trees, in-network reduction, drop injection, time-varying link
//!   state, port counters).
//! * [`trace`] — the deterministic flight recorder: bounded ring-buffer
//!   trace sink, runtime spans, link-utilization timelines, and
//!   Chrome/Perfetto trace export.
//! * [`offload`] — pluggable in-network compute backends (BlueField-3
//!   DPA, host CPU, FPGA SmartNIC, SHARP-style in-switch reduction)
//!   behind one cost-model trait.
//! * [`memfabric`] — the threaded real-byte fabric for end-to-end
//!   validation.
//! * [`baselines`] — point-to-point collective schedules.
//! * [`dpa`] — the cycle-level SmartNIC (DPA) simulator.
//! * [`models`] — the paper's analytic cost models.
//! * [`verbs`] — shared RDMA vocabulary (transports, QPs, PSNs, MTUs).
//!
//! ```
//! use mcast_allgather::core::{des, CollectiveKind, ProtocolConfig};
//! use mcast_allgather::simnet::{FabricConfig, Topology};
//! use mcast_allgather::verbs::LinkRate;
//!
//! let out = des::run_collective(
//!     Topology::single_switch(4, LinkRate::CX3_56G, 100),
//!     FabricConfig::ucc_default(),
//!     ProtocolConfig::default(),
//!     CollectiveKind::Allgather,
//!     64 << 10,
//! );
//! assert!(out.stats.all_done());
//! // Bandwidth optimality: no link carried more than P * N payload bytes.
//! assert!(out.traffic.max_link_data_bytes() <= 4 * (64 << 10));
//! ```

#![warn(missing_docs)]

pub use mcag_baselines as baselines;
pub use mcag_core as core;
pub use mcag_dpa as dpa;
pub use mcag_exec as exec;
pub use mcag_faults as faults;
pub use mcag_memfabric as memfabric;
pub use mcag_models as models;
pub use mcag_offload as offload;
pub use mcag_runtime as runtime;
pub use mcag_simnet as simnet;
pub use mcag_trace as trace;
pub use mcag_verbs as verbs;
