//! End-to-end integration: the multicast collectives on the full
//! simulated UCC testbed, including the paper's headline invariants.

use mcast_allgather::core::{des, CollectiveKind, ProtocolConfig};
use mcast_allgather::simnet::{DropModel, FabricConfig, Topology};
use mcast_allgather::verbs::{Mtu, Rank};

fn proto(mtu: usize) -> ProtocolConfig {
    ProtocolConfig {
        mtu: Mtu::new(mtu),
        ..ProtocolConfig::default()
    }
}

#[test]
fn full_testbed_allgather_completes() {
    let out = des::run_collective(
        Topology::ucc_testbed(),
        FabricConfig::ucc_default(),
        proto(16 << 10),
        CollectiveKind::Allgather,
        256 << 10,
    );
    assert!(out.stats.all_done());
    assert_eq!(out.rnr_drops, 0);
    assert_eq!(out.total_fetched(), 0);
    // Receive-bound: mean throughput within the 56 Gbit/s link.
    let gbps = out.mean_recv_gbps();
    assert!(gbps > 30.0 && gbps < 56.0, "mean {gbps} Gbit/s");
}

#[test]
fn bandwidth_optimality_every_link_carries_each_byte_once() {
    // The defining property (Insight 1): after an Allgather of N bytes
    // per rank, no link carries more than P*N payload bytes, and most
    // carry far less. Verified from the same counters Fig. 12 uses.
    let n = 64usize << 10;
    let out = des::run_collective(
        Topology::ucc_testbed(),
        FabricConfig::ideal(),
        proto(4096),
        CollectiveKind::Allgather,
        n,
    );
    assert!(out.stats.all_done());
    let bound = 188 * n as u64;
    assert!(
        out.traffic.max_link_data_bytes() <= bound,
        "{} > {bound}",
        out.traffic.max_link_data_bytes()
    );
    // Host injection: exactly N per rank (+0 control data bytes).
    let topo = Topology::ucc_testbed();
    assert_eq!(
        out.traffic.host_injection_bytes(&topo)
            - out
                .traffic
                .per_link()
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    use mcast_allgather::simnet::{LinkId, NodeKind};
                    matches!(
                        topo.kind(topo.link(LinkId(*i as u32)).src),
                        NodeKind::Host(_)
                    )
                })
                .map(|(_, c)| c.ctrl_bytes)
                .sum::<u64>(),
        188 * n as u64,
        "multicast injection must be exactly N per rank"
    );
}

#[test]
fn broadcast_at_scale_with_subgroups() {
    let out = des::run_collective(
        Topology::ucc_testbed(),
        FabricConfig::ucc_default(),
        ProtocolConfig {
            mtu: Mtu::new(16 << 10),
            subgroups: 4,
            ..ProtocolConfig::default()
        },
        CollectiveKind::Broadcast { root: Rank(42) },
        1 << 20,
    );
    assert!(out.stats.all_done());
    // Every leaf saw the full buffer exactly once (no recovery).
    assert_eq!(out.total_fetched(), 0);
    for (i, t) in out.timings.iter().enumerate() {
        assert!(t.t_done.is_some(), "rank {i} never released");
    }
}

#[test]
fn adaptive_routing_out_of_order_delivery_tolerated() {
    let mut cfg = FabricConfig::ucc_default();
    cfg.adaptive_routing = true;
    cfg.seed = 1234;
    let out = des::run_collective(
        Topology::ucc_testbed(),
        cfg,
        proto(8 << 10),
        CollectiveKind::Allgather,
        128 << 10,
    );
    assert!(out.stats.all_done(), "OOO delivery broke the protocol");
    assert_eq!(out.total_fetched(), 0, "no drops, so no recovery needed");
}

#[test]
fn fabric_drops_at_scale_recovered_by_fetch_ring() {
    let mut cfg = FabricConfig::ucc_default();
    cfg.drops = DropModel::uniform(0.002);
    cfg.seed = 77;
    let out = des::run_collective(
        Topology::fat_tree_two_level(32, 2, 1, 2, mcast_allgather::verbs::LinkRate::CX3_56G, 300),
        cfg,
        proto(4096),
        CollectiveKind::Allgather,
        64 << 10,
    );
    assert!(out.stats.all_done(), "{:?}", out.stats);
    assert!(out.fabric_drops > 0, "seed produced no drops");
    assert!(out.total_fetched() > 0);
}

#[test]
fn chains_and_subgroups_compose() {
    for chains in [1u32, 2, 4] {
        for subgroups in [1u32, 3] {
            let out = des::run_collective(
                Topology::single_switch(12, mcast_allgather::verbs::LinkRate::CX3_56G, 100),
                FabricConfig::ucc_default(),
                ProtocolConfig {
                    chains,
                    subgroups,
                    ..ProtocolConfig::default()
                },
                CollectiveKind::Allgather,
                96 << 10,
            );
            assert!(
                out.stats.all_done(),
                "chains={chains} subgroups={subgroups}"
            );
        }
    }
}

#[test]
fn chain_parallelism_shortens_the_schedule() {
    // More parallel chains -> shorter Allgather on an uncongested star
    // (multicast parallelism, Section IV-A).
    let run = |chains: u32| {
        let out = des::run_collective(
            Topology::single_switch(16, mcast_allgather::verbs::LinkRate::CX3_56G, 100),
            FabricConfig::ucc_default(),
            ProtocolConfig {
                chains,
                ..ProtocolConfig::default()
            },
            CollectiveKind::Allgather,
            256 << 10,
        );
        assert!(out.stats.all_done());
        out.completion_ns()
    };
    let t1 = run(1);
    let t4 = run(4);
    assert!(
        t4 < t1,
        "4 chains ({t4} ns) should beat 1 chain ({t1} ns) on an uncongested fabric"
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Randomized bandwidth-optimality: on any topology shape with
        /// any (P, N, subgroups, chains), no link ever carries more than
        /// P*N payload bytes of one Allgather.
        #[test]
        fn bandwidth_optimality_randomized(
            p in 2usize..20,
            n_kib in 1usize..129,
            subgroups in 1u32..4,
            chains in 1u32..4,
            two_level: bool,
        ) {
            use mcast_allgather::verbs::LinkRate;
            let n = n_kib << 10;
            let topo = if two_level && p >= 4 {
                Topology::fat_tree_two_level(p, 2, 1, 2, LinkRate::CX3_56G, 100)
            } else {
                Topology::single_switch(p, LinkRate::CX3_56G, 100)
            };
            let out = des::run_collective(
                topo,
                FabricConfig::ideal(),
                ProtocolConfig {
                    subgroups,
                    chains,
                    ..ProtocolConfig::default()
                },
                CollectiveKind::Allgather,
                n,
            );
            prop_assert!(out.stats.all_done());
            prop_assert!(
                out.traffic.max_link_data_bytes() <= (p * n) as u64,
                "link carried {} > P*N = {}",
                out.traffic.max_link_data_bytes(),
                p * n
            );
        }
    }
}

#[test]
fn deterministic_at_scale() {
    let run = || {
        des::run_collective(
            Topology::ucc_testbed(),
            FabricConfig::ucc_default(),
            proto(32 << 10),
            CollectiveKind::Allgather,
            512 << 10,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.completion_ns(), b.completion_ns());
    assert_eq!(a.stats.events, b.stats.events);
    assert_eq!(a.traffic.total_data_bytes(), b.traffic.total_data_bytes());
}
