//! Golden guarantees of the flight recorder (`mcag-trace`):
//!
//! * a traced 188-node Allgather run through the runtime is
//!   byte-identical across simulation worker counts — the per-batch
//!   fabric rings merge onto the virtual clock in commit order, so
//!   `jobs = 1` and `jobs = 4` produce the same report *and* the same
//!   trace;
//! * attaching the recorder never perturbs results — a traced run's
//!   report is bit-identical to the untraced run of the same seed;
//! * ring overflow is observable (the drop counter) but harmless — a
//!   recorder too small for the run changes nothing but its own
//!   contents.

use mcast_allgather::core::{des, CollectiveKind, ProtocolConfig};
use mcast_allgather::runtime::{
    JobKind, PoolConfig, Runtime, RuntimeConfig, RuntimeReport, RuntimeTrace, TraceSpec,
};
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::trace::{export_chrome, validate_json, ChromeOptions};
use mcast_allgather::verbs::LinkRate;

/// Allgather jobs from three tenants on the paper's 188-node UCC
/// testbed, run open-loop through the runtime with the recorder on.
fn traced_ag188_run(jobs: usize, spec: Option<TraceSpec>) -> (RuntimeReport, Option<RuntimeTrace>) {
    let mut rt = Runtime::new(
        Topology::ucc_testbed(),
        RuntimeConfig {
            pool: PoolConfig::with_capacity(8),
            max_inflight: 2,
            partitions: 2,
            trace: spec,
            ..RuntimeConfig::default()
        },
    );
    let tenants: Vec<_> = (0..3)
        .map(|i| rt.register_tenant(&format!("t{i}")))
        .collect();
    for (i, &t) in tenants.iter().enumerate() {
        for j in 0..2u64 {
            rt.submit_at(j * 300_000, t, JobKind::Allgather, (4 << 10) << (i % 2));
        }
    }
    let report = rt.run_open_loop_jobs(jobs);
    let trace = rt.take_trace();
    (report, trace)
}

#[test]
fn traced_ag188_identical_across_worker_counts() {
    let (r1, t1) = traced_ag188_run(1, Some(TraceSpec::default()));
    let t1 = t1.expect("tracing was enabled");
    // Not trivially identical: the run recorded real activity.
    assert_eq!(r1.completed_jobs(), 6);
    assert!(!t1.fabric.is_empty(), "fabric events were recorded");
    assert_eq!(t1.jobs.len(), 6, "one span per completed job");
    assert!(!t1.batches.is_empty());

    let (r4, t4) = traced_ag188_run(4, Some(TraceSpec::default()));
    let t4 = t4.expect("tracing was enabled");
    assert_eq!(r1, r4, "report diverged across worker counts");
    assert_eq!(t1, t4, "trace diverged across worker counts");
    // Byte-identical, not just structurally equal.
    assert_eq!(format!("{t1:?}"), format!("{t4:?}"));

    // And the exported Chrome trace is byte-identical too.
    let opts = ChromeOptions::default();
    let (d1, d4) = (export_chrome(&t1, &opts), export_chrome(&t4, &opts));
    assert_eq!(d1, d4);
    validate_json(&d1).expect("chrome export parses as JSON");
}

#[test]
fn tracing_off_matches_tracing_on() {
    // Runtime layer: the report must not change when the recorder rides
    // along (it only observes; spans are bookkeeping outside the
    // simulation).
    let (on, trace) = traced_ag188_run(1, Some(TraceSpec::default()));
    let (off, no_trace) = traced_ag188_run(1, None);
    assert!(no_trace.is_none(), "no spec, no trace");
    assert!(trace.is_some());
    assert_eq!(on, off, "recorder perturbed the runtime report");
    assert_eq!(format!("{on:?}"), format!("{off:?}"));

    // Fabric layer: same invariant for a one-shot collective.
    let run = |spec: Option<TraceSpec>| {
        let mut cfg = FabricConfig::ucc_default();
        cfg.trace = spec;
        des::run_collective(
            Topology::single_switch(8, LinkRate::CX3_56G, 100),
            cfg,
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            32 << 10,
        )
    };
    let traced = run(Some(TraceSpec::default()));
    let plain = run(None);
    assert!(traced.trace.is_some());
    assert!(plain.trace.is_none());
    assert_eq!(traced.stats.events, plain.stats.events);
    assert_eq!(traced.completion_ns(), plain.completion_ns());
    assert_eq!(traced.rnr_drops, plain.rnr_drops);
    assert_eq!(traced.fabric_drops, plain.fabric_drops);
    assert_eq!(
        format!("{:?}", traced.traffic.per_link()),
        format!("{:?}", plain.traffic.per_link())
    );
}

#[test]
fn ring_overflow_counts_drops_without_perturbing_results() {
    // A ring far too small for the run: it must wrap (drop counter > 0),
    // keep exactly `capacity` events — the newest window — and leave the
    // simulation results bit-identical to a comfortably sized ring.
    let tiny = TraceSpec::with_capacity(64);
    let (r_tiny, t_tiny) = traced_ag188_run(1, Some(tiny));
    let (r_big, t_big) = traced_ag188_run(1, Some(TraceSpec::default()));
    let (t_tiny, t_big) = (t_tiny.unwrap(), t_big.unwrap());

    assert_eq!(r_tiny, r_big, "ring capacity leaked into the report");
    assert!(
        t_tiny.fabric_dropped > 0,
        "a 64-slot ring must overflow on a 188-node run"
    );
    assert!(t_tiny.fabric.len() < t_big.fabric.len());
    assert_eq!(
        t_tiny.fabric_dropped + t_tiny.fabric.len() as u64,
        t_big.fabric_dropped + t_big.fabric.len() as u64,
        "offered-event totals must agree regardless of capacity"
    );
    // The kept window is the newest events: every survivor in the tiny
    // trace also appears in the big one.
    assert!(t_tiny.fabric.iter().all(|ev| t_big.fabric.contains(ev)));
    // Spans are recorded outside the ring, so they never drop.
    assert_eq!(t_tiny.jobs, t_big.jobs);
    assert_eq!(t_tiny.batches, t_big.batches);
}
