//! Determinism equivalence of the timer-wheel event engine against the
//! reference binary-heap engine, plus golden values pinning the 188-node
//! Allgather so any engine change that perturbs `(time, seq)` pop order
//! fails loudly.

use mcast_allgather::core::{des, CollectiveKind, CollectiveOutcome, ProtocolConfig};
use mcast_allgather::simnet::{FabricConfig, QueueBackend, Topology};
use mcast_allgather::verbs::{LinkRate, Rank};

/// Golden values for the 188-node UCC-testbed Allgather at 64 KiB with
/// default protocol knobs. Regenerate by printing `out.completion_ns()`,
/// `out.stats.events`, and `out.traffic.total_data_bytes()` after an
/// intentional model change.
const GOLDEN_COMPLETION_NS: u64 = 2_247_862;
const GOLDEN_EVENTS: u64 = 1_176_718;
const GOLDEN_DATA_BYTES: u64 = 2_464_153_600;

fn run_188(backend: QueueBackend) -> CollectiveOutcome {
    let mut cfg = FabricConfig::ucc_default();
    cfg.event_queue = backend;
    des::run_collective(
        Topology::ucc_testbed(),
        cfg,
        ProtocolConfig::default(),
        CollectiveKind::Allgather,
        64 << 10,
    )
}

#[test]
fn golden_188node_allgather_identical_across_engines() {
    let wheel = run_188(QueueBackend::Wheel);
    let heap = run_188(QueueBackend::Heap);
    assert!(wheel.stats.all_done() && heap.stats.all_done());

    // Engine equivalence: completion times, per-rank times, event counts,
    // and every per-link counter must match bit for bit.
    assert_eq!(wheel.completion_ns(), heap.completion_ns());
    assert_eq!(wheel.stats.end_time, heap.stats.end_time);
    assert_eq!(wheel.stats.per_rank_done, heap.stats.per_rank_done);
    assert_eq!(wheel.stats.events, heap.stats.events);
    assert_eq!(wheel.stats.peak_queue_depth, heap.stats.peak_queue_depth);
    assert_eq!(wheel.traffic.per_link(), heap.traffic.per_link());
    assert_eq!(wheel.rnr_drops, heap.rnr_drops);
    assert_eq!(wheel.fabric_drops, heap.fabric_drops);

    // Golden pins: the wheel engine reproduces the pre-overhaul numbers.
    assert_eq!(wheel.completion_ns(), GOLDEN_COMPLETION_NS);
    assert_eq!(wheel.stats.events, GOLDEN_EVENTS);
    assert_eq!(wheel.traffic.total_data_bytes(), GOLDEN_DATA_BYTES);
}

#[test]
fn engines_agree_across_kinds_and_scales() {
    // Smaller sweeps covering Broadcast, subgroup parallelism, and a
    // lossy run (seeded drops + recovery) — cheap enough for every CI
    // run, unlike the 188-node golden test above.
    let scenarios: Vec<(&str, FabricConfig, ProtocolConfig, CollectiveKind, usize)> = vec![
        (
            "bcast-16",
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            CollectiveKind::Broadcast { root: Rank(3) },
            128 << 10,
        ),
        (
            "ag-parallel",
            FabricConfig::ucc_default(),
            ProtocolConfig::parallel(2, 4),
            CollectiveKind::Allgather,
            64 << 10,
        ),
        (
            "ag-lossy",
            {
                let mut cfg = FabricConfig::ucc_default();
                cfg.drops = mcast_allgather::simnet::DropModel::uniform(0.005);
                cfg.seed = 7;
                cfg
            },
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            32 << 10,
        ),
    ];
    for (name, cfg, proto, kind, len) in scenarios {
        let run = |backend: QueueBackend| {
            let mut c = cfg.clone();
            c.event_queue = backend;
            des::run_collective(
                Topology::single_switch(16, LinkRate::CX3_56G, 100),
                c,
                proto,
                kind,
                len,
            )
        };
        let wheel = run(QueueBackend::Wheel);
        let heap = run(QueueBackend::Heap);
        assert!(wheel.stats.all_done(), "{name}: wheel incomplete");
        assert_eq!(
            wheel.stats.end_time, heap.stats.end_time,
            "{name}: end times diverge"
        );
        assert_eq!(
            wheel.stats.per_rank_done, heap.stats.per_rank_done,
            "{name}: per-rank times diverge"
        );
        assert_eq!(
            wheel.stats.events, heap.stats.events,
            "{name}: event counts"
        );
        assert_eq!(
            wheel.traffic.per_link(),
            heap.traffic.per_link(),
            "{name}: link counters diverge"
        );
        assert_eq!(wheel.fabric_drops, heap.fabric_drops, "{name}: drops");
    }
}

#[test]
fn engine_stats_populate_the_report() {
    let out = run_188(QueueBackend::Wheel);
    assert!(out.stats.events_per_sec() > 0.0);
    assert!(out.traffic.events() > 0);
    assert!(out.traffic.peak_queue_depth() > 0);
    assert!(out.traffic.wall_ns() > 0);
}
