//! Property-style invariants of the fabric substrate itself: routing,
//! multicast trees, and the in-network reduction plumbing — checked on
//! randomized topologies, not just the fixed testbeds.

use mcast_allgather::simnet::mcast::McastTree;
use mcast_allgather::simnet::routing::{self, RouteMode};
use mcast_allgather::simnet::{NodeKind, Topology};
use mcast_allgather::verbs::{LinkRate, McastGroupId, Rank};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random two-level fat-tree generator for property tests.
fn arb_two_level() -> impl Strategy<Value = Topology> {
    (2usize..40, 1usize..5, 1usize..4, 1usize..3).prop_map(|(hosts, leaves, spines, rails)| {
        Topology::fat_tree_two_level(
            hosts.max(2),
            leaves.min(hosts),
            spines,
            rails,
            LinkRate::CX3_56G,
            100,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every pair routes successfully with a valid walk, both modes.
    #[test]
    fn all_pairs_route(topo in arb_two_level(), seed: u64) {
        let p = topo.num_hosts() as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        for s in 0..p {
            for d in 0..p {
                if s == d { continue; }
                for mode in [RouteMode::Deterministic, RouteMode::Adaptive] {
                    let path = routing::route(&topo, Rank(s), Rank(d), mode, 0, &mut rng);
                    prop_assert!(routing::path_is_valid(&topo, Rank(s), Rank(d), &path));
                    prop_assert!(path.len() <= 4, "two-level paths are at most 4 hops");
                }
            }
        }
    }

    /// Multicast trees are spanning trees: node count = edge count + 1,
    /// and flooding from any member reaches all other members once.
    #[test]
    fn mcast_tree_is_spanning(topo in arb_two_level(), gid: u32) {
        let p = topo.num_hosts() as u32;
        prop_assume!(p >= 2);
        let members: Vec<Rank> = (0..p).map(Rank).collect();
        let tree = McastTree::build(&topo, McastGroupId(gid % 64), &members);
        prop_assert_eq!(tree.nodes().count(), tree.num_edges() + 1);

        // Flood from a pseudo-random entry.
        let entry = Rank(gid % p);
        let start = topo.host_node(entry);
        let mut frontier = vec![(start, None)];
        let mut hosts_hit = 0usize;
        let mut visited_links = std::collections::HashSet::new();
        while let Some((node, in_link)) = frontier.pop() {
            for l in tree.out_links(&topo, node, in_link) {
                prop_assert!(visited_links.insert(l), "link traversed twice");
                let dst = topo.link(l).dst;
                if matches!(topo.kind(dst), NodeKind::Host(_)) {
                    hosts_hit += 1;
                } else {
                    frontier.push((dst, Some(l)));
                }
            }
        }
        prop_assert_eq!(hosts_hit, p as usize - 1);
    }

    /// Tree orientation: following parent links from any member reaches
    /// the root without cycles, and child links partition the adjacency.
    #[test]
    fn tree_orientation_consistent(topo in arb_two_level(), gid: u32) {
        let p = topo.num_hosts() as u32;
        prop_assume!(p >= 2);
        let members: Vec<Rank> = (0..p).map(Rank).collect();
        let tree = McastTree::build(&topo, McastGroupId(gid % 64), &members);
        let root = tree.root();
        for n in tree.nodes() {
            let kids = tree.child_links(n).count();
            let parent = tree.parent_link(n);
            // Degree bookkeeping: children + optional parent = adjacency.
            let degree = kids + parent.is_some() as usize;
            let adj = tree.out_links(&topo, n, None).count();
            prop_assert_eq!(degree, adj, "node {:?}", n);
            // Ascend to root.
            let mut at = n;
            let mut hops = 0;
            while at != root {
                let l = tree.parent_link(at).expect("orphan");
                at = topo.link(l).dst;
                hops += 1;
                prop_assert!(hops <= 4);
            }
        }
    }

    /// Deterministic routes are stable under the same salt and differ by
    /// destination host (no accidental aliasing).
    #[test]
    fn deterministic_routing_is_pure(topo in arb_two_level(), salt: u64) {
        let p = topo.num_hosts() as u32;
        prop_assume!(p >= 3);
        let mut rng = StdRng::seed_from_u64(1);
        let a = routing::route(&topo, Rank(0), Rank(1), RouteMode::Deterministic, salt, &mut rng);
        let b = routing::route(&topo, Rank(0), Rank(1), RouteMode::Deterministic, salt, &mut rng);
        prop_assert_eq!(&a, &b);
        let c = routing::route(&topo, Rank(0), Rank(2), RouteMode::Deterministic, salt, &mut rng);
        prop_assert_ne!(a.last(), c.last(), "different hosts, different last hop");
    }
}

#[test]
fn three_level_trees_span_pods() {
    // Fixed deep-topology check (generated fabrics above are two-level).
    let topo = Topology::fat_tree_three_level(4, 4, 4, 4, 8, LinkRate::NDR_400G, 200);
    assert_eq!(topo.num_hosts(), 64);
    let members: Vec<Rank> = (0..64).map(Rank).collect();
    for gid in 0..8 {
        let tree = McastTree::build(&topo, McastGroupId(gid), &members);
        assert_eq!(tree.nodes().count(), tree.num_edges() + 1);
        // Root is a core switch; every member can ascend to it.
        assert_eq!(topo.level(tree.root()), 3);
    }
}
