//! Cross-crate comparisons between the multicast collectives and the
//! point-to-point baselines — the qualitative claims of Figs. 11/12.

use mcast_allgather::baselines::{
    binary_tree_broadcast, knomial_broadcast, pipelined_chain_broadcast, ring_allgather, run_p2p,
    scatter_allgather_broadcast,
};
use mcast_allgather::core::{des, CollectiveKind, ProtocolConfig};
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::verbs::{LinkRate, Mtu, Rank};

fn ucc() -> Topology {
    Topology::ucc_testbed()
}

fn proto(mtu: usize) -> ProtocolConfig {
    ProtocolConfig {
        mtu: Mtu::new(mtu),
        ..ProtocolConfig::default()
    }
}

#[test]
fn mcast_allgather_matches_ring_throughput_at_fsdp_sizes() {
    // Fig. 11: "For 128-256 KiB Allgather, typical for FSDP training,
    // the multicast approach achieves the same throughput as the ring."
    let n = 256usize << 10;
    let mc = des::run_collective(
        ucc(),
        FabricConfig::ucc_default(),
        proto(16 << 10),
        CollectiveKind::Allgather,
        n,
    );
    let ring = run_p2p(
        ucc(),
        FabricConfig::ucc_default(),
        ring_allgather(188, n),
        16 << 10,
    );
    assert!(mc.stats.all_done() && ring.stats.all_done());
    let mc_gbps = mc.mean_recv_gbps();
    let ring_v = ring.recv_gbps(0, |_| (n as u64) * 187);
    let ring_gbps = ring_v.iter().sum::<f64>() / ring_v.len() as f64;
    let ratio = mc_gbps / ring_gbps;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "mcast {mc_gbps:.1} vs ring {ring_gbps:.1} Gbit/s (ratio {ratio:.2})"
    );
}

#[test]
fn mcast_broadcast_beats_every_p2p_tree_at_large_sizes() {
    let n = 1usize << 20;
    let root = Rank(0);
    let mc = des::run_collective(
        ucc(),
        FabricConfig::ucc_default(),
        proto(16 << 10),
        CollectiveKind::Broadcast { root },
        n,
    );
    assert!(mc.stats.all_done());
    let mc_gbps = mc.mean_recv_gbps();

    let mean = |o: &mcast_allgather::baselines::P2POutcome| {
        let v = o.recv_gbps(0, |r| if r == root { 0 } else { n as u64 });
        v.iter().sum::<f64>() / v.len() as f64
    };
    let cfg = FabricConfig::ucc_default;
    let chain = mean(&run_p2p(
        ucc(),
        cfg(),
        pipelined_chain_broadcast(188, root, n, 4096),
        4096,
    ));
    let sag = mean(&run_p2p(
        ucc(),
        cfg(),
        scatter_allgather_broadcast(188, root, n),
        16 << 10,
    ));
    let knom = mean(&run_p2p(
        ucc(),
        cfg(),
        knomial_broadcast(188, root, n, 4),
        16 << 10,
    ));
    let btree = mean(&run_p2p(
        ucc(),
        cfg(),
        binary_tree_broadcast(188, root, n),
        16 << 10,
    ));
    for (name, gbps) in [
        ("pipelined chain", chain),
        ("scatter-allgather", sag),
        ("4-nomial", knom),
        ("binary tree", btree),
    ] {
        assert!(
            mc_gbps > gbps,
            "mcast ({mc_gbps:.1}) must beat {name} ({gbps:.1})"
        );
    }
    // The paper's extremes: best P2P within ~2x, binary tree much worse.
    assert!(
        mc_gbps / chain < 3.0,
        "chain too weak: {mc_gbps:.1}/{chain:.1}"
    );
    assert!(mc_gbps / btree > 3.0, "binary tree unexpectedly strong");
}

#[test]
fn mcast_send_volume_constant_in_p() {
    // Insight 1 measured on the wire: multicast injection is N per rank
    // regardless of P; ring injection grows as N(P-1).
    let n = 64usize << 10;
    for p in [8usize, 32] {
        let topo = || Topology::single_switch(p, LinkRate::CX3_56G, 100);
        let mc = des::run_collective(
            topo(),
            FabricConfig::ideal(),
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            n,
        );
        let ring = run_p2p(
            topo(),
            FabricConfig::ideal(),
            ring_allgather(p as u32, n),
            16 << 10,
        );
        let t = topo();
        let mc_inject_data: u64 = mc
            .traffic
            .per_link()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                use mcast_allgather::simnet::{LinkId, NodeKind};
                matches!(t.kind(t.link(LinkId(*i as u32)).src), NodeKind::Host(_))
            })
            .map(|(_, c)| c.data_bytes)
            .sum();
        assert_eq!(mc_inject_data, (p * n) as u64, "mcast injection at P={p}");
        let ring_inject = ring.traffic.host_injection_bytes(&t);
        assert_eq!(ring_inject, (p * (p - 1) * n) as u64);
    }
}

#[test]
fn traffic_savings_grow_toward_2x_at_scale() {
    let n = 64usize << 10;
    let mc = des::run_collective(
        ucc(),
        FabricConfig::ucc_default(),
        proto(4096),
        CollectiveKind::Allgather,
        n,
    );
    let ring = run_p2p(
        ucc(),
        FabricConfig::ucc_default(),
        ring_allgather(188, n),
        16 << 10,
    );
    let t = ucc();
    let savings = ring.traffic.switch_port_rxtx_bytes(&t) as f64
        / mc.traffic.switch_port_rxtx_bytes(&t) as f64;
    assert!(
        (1.5..=2.2).contains(&savings),
        "switch-counter savings {savings:.2} outside the paper's 1.5-2x"
    );
}

#[test]
fn mcast_variability_lower_than_p2p_trees() {
    // Section VI-B(c): "significantly smaller throughput variability in
    // multicast-based collectives".
    let n = 1usize << 20;
    let root = Rank(0);
    let mc = des::run_collective(
        ucc(),
        FabricConfig::ucc_default(),
        proto(16 << 10),
        CollectiveKind::Broadcast { root },
        n,
    );
    let btree = run_p2p(
        ucc(),
        FabricConfig::ucc_default(),
        binary_tree_broadcast(188, root, n),
        16 << 10,
    );
    let cv = |v: &[f64]| {
        let m = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt() / m
    };
    let btree_v = btree.recv_gbps(0, |r| if r == root { 0 } else { n as u64 });
    assert!(
        mc.recv_gbps_cv() < cv(&btree_v),
        "mcast CV {:.3} should be below binary-tree CV {:.3}",
        mc.recv_gbps_cv(),
        cv(&btree_v)
    );
}
