//! Golden guarantees of the offload-backend subsystem:
//!
//! * the **backend × collective × scale sweep** is byte-identical at
//!   `jobs = 1` and `jobs = 4`;
//! * the re-homed **DPA backend** is bit-for-bit the pre-refactor
//!   `mcag_dpa::run_datapath` — at the Table-I operating point and at
//!   full hardware occupancy, on both transports;
//! * **in-switch reduction computes the same value as endpoint
//!   reduction** on arbitrary aggregation trees (proptest), and the
//!   DES-level drivers agree that both placements complete the same
//!   Reduce-Scatter.

use mcag_bench::backendfigs::sweep_digests;
use mcast_allgather::core::{run_endpoint_reduce_scatter, run_inc_reduce_scatter};
use mcast_allgather::dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};
use mcast_allgather::offload::{flat_reduce, tree_reduce, BackendKind, DatapathTransport};
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::verbs::{LinkRate, Mtu};
use proptest::prelude::*;

#[test]
fn backend_sweep_identical_across_worker_counts() {
    let serial = sweep_digests("smoke", 1);
    let parallel = sweep_digests("smoke", 4);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "backend sweep diverged across worker counts"
    );
}

#[test]
fn dpa_backend_is_the_pre_refactor_datapath() {
    let be = BackendKind::DpaBf3.instantiate();
    let spec = DpaSpec::bf3();
    for (transport, kind) in [
        (DatapathTransport::Uc, KernelKind::DpaUc),
        (DatapathTransport::Ud, KernelKind::DpaUd),
    ] {
        // Table-I operating point: one thread, 4 KiB chunks, saturated.
        // Then full occupancy — every hardware context busy.
        for threads in [1, spec.total_threads()] {
            let via_trait = be.datapath(transport, threads, 4096, 40_000, ArrivalModel::Saturated);
            let direct = run_datapath(
                &spec,
                &Kernel::new(kind),
                threads,
                4096,
                40_000,
                ArrivalModel::Saturated,
            );
            assert_eq!(
                via_trait, direct,
                "DPA backend drifted from run_datapath ({transport:?}, {threads} threads)"
            );
        }
    }
}

proptest! {
    /// In-switch reduction folds partial aggregates up an arbitrary
    /// tree; the endpoint path folds every contribution flat at the
    /// owner. Same operands, same result — on every tree shape.
    #[test]
    fn in_switch_reduction_matches_endpoint_reduction(
        raw in prop::collection::vec(any::<u64>(), 2..40),
        shuffle in any::<u64>(),
    ) {
        // Derive an arbitrary valid tree (parent[i] < i) and operand
        // set from the raw entropy: entry i contributes raw[i] at a
        // node whose parent is drawn from the slots above it.
        let n = raw.len();
        let mut parent = vec![0usize; n];
        for i in 1..n {
            parent[i] = (raw[i] ^ shuffle) as usize % i;
        }
        prop_assert_eq!(tree_reduce(&parent, &raw), flat_reduce(&raw));

        // Relay-only switches (zero contribution) never change the sum.
        let mut with_relays = raw.clone();
        with_relays.extend([0u64, 0]);
        let mut relay_parent = parent.clone();
        relay_parent.push(shuffle as usize % n);
        relay_parent.push((shuffle >> 32) as usize % (n + 1));
        prop_assert_eq!(tree_reduce(&relay_parent, &with_relays), flat_reduce(&raw));
    }
}

#[test]
fn both_reduction_placements_complete_the_same_reduce_scatter() {
    // DES-level agreement: in-switch and endpoint Reduce-Scatter
    // drivers run the identical (topology, shard) problem to
    // completion; the in-switch path converges operands in the fabric
    // and therefore moves strictly less payload.
    for topo in [
        Topology::single_switch(6, LinkRate::CX3_56G, 100),
        Topology::fat_tree_two_level(12, 3, 2, 1, LinkRate::CX3_56G, 100),
    ] {
        let shard = 16 << 10;
        let inc =
            run_inc_reduce_scatter(topo.clone(), FabricConfig::ucc_default(), Mtu::IB_4K, shard);
        let endpoint = run_endpoint_reduce_scatter(
            topo.clone(),
            FabricConfig::ucc_default(),
            Mtu::IB_4K,
            shard,
        );
        for out in [&inc, &endpoint] {
            assert!(out.stats.all_done(), "RS did not complete on {topo:?}");
            assert!(out.rs_times.iter().all(|t| t.is_some()));
        }
        assert!(
            inc.traffic.total_data_bytes() < endpoint.traffic.total_data_bytes(),
            "in-switch reduction must move less payload"
        );
    }
}
