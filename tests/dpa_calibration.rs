//! DPA-simulator calibration and scaling invariants, checked against the
//! numbers the paper reports (Table I, Figs. 5/13/14/16).

use mcast_allgather::dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};

const LINK: ArrivalModel = ArrivalModel::LinkRate {
    gbps: 200.0,
    header_bytes: 64,
};

#[test]
fn table1_all_four_columns_within_tolerance() {
    let spec = DpaSpec::bf3();
    let cases = [
        (KernelKind::DpaUc, 11.9, 66.0, 598.0, 0.11),
        (KernelKind::DpaUd, 5.2, 113.0, 1084.0, 0.10),
    ];
    for (kind, gib, instr, cyc, ipc) in cases {
        let m = run_datapath(
            &spec,
            &Kernel::new(kind),
            1,
            4096,
            20_000,
            ArrivalModel::Saturated,
        );
        assert!(
            (m.gib_per_s - gib).abs() / gib < 0.12,
            "{kind:?} GiB/s {} vs paper {gib}",
            m.gib_per_s
        );
        assert_eq!(m.instr_per_cqe, instr, "{kind:?} instructions");
        assert!(
            (m.cycles_per_cqe - cyc).abs() / cyc < 0.12,
            "{kind:?} cycles {} vs paper {cyc}",
            m.cycles_per_cqe
        );
        assert!((m.ipc - ipc).abs() < 0.025, "{kind:?} IPC {}", m.ipc);
    }
}

#[test]
fn one_dpa_core_reaches_line_rate_cpu_core_does_not() {
    // Fig. 5's thesis, end to end.
    let ceiling = 200.0 * 4096.0 / 4160.0;
    let dpa = run_datapath(
        &DpaSpec::bf3(),
        &Kernel::new(KernelKind::DpaUd),
        16,
        4096,
        20_000,
        LINK,
    );
    assert!(dpa.goodput_gbps > 0.95 * ceiling);
    for kind in [KernelKind::CpuUdUcx, KernelKind::CpuRcCustom] {
        let cpu = run_datapath(
            &DpaSpec::host_cpu(),
            &Kernel::new(kind),
            1,
            4096,
            20_000,
            LINK,
        );
        assert!(
            cpu.goodput_gbps < 0.75 * 200.0,
            "{kind:?} unrealistically fast: {}",
            cpu.goodput_gbps
        );
        assert!(
            cpu.goodput_gbps > 0.25 * 200.0,
            "{kind:?} unrealistically slow: {}",
            cpu.goodput_gbps
        );
    }
}

#[test]
fn thread_scaling_monotone_for_both_transports() {
    let spec = DpaSpec::bf3();
    for kind in [KernelKind::DpaUd, KernelKind::DpaUc] {
        let k = Kernel::new(kind);
        let mut last = 0.0;
        for t in [1u32, 2, 4, 8, 16] {
            let m = run_datapath(&spec, &k, t, 4096, 20_000, LINK);
            assert!(
                m.goodput_gbps >= last * 0.995,
                "{kind:?} regressed at {t} threads"
            );
            last = m.goodput_gbps;
        }
    }
}

#[test]
fn uc_is_roughly_twice_ud_per_thread() {
    // The UD path does ~2x the per-CQE work (staging copy posting);
    // Table I has 11.9 vs 5.2 GiB/s.
    let spec = DpaSpec::bf3();
    let ud = run_datapath(
        &spec,
        &Kernel::new(KernelKind::DpaUd),
        1,
        4096,
        20_000,
        ArrivalModel::Saturated,
    );
    let uc = run_datapath(
        &spec,
        &Kernel::new(KernelKind::DpaUc),
        1,
        4096,
        20_000,
        ArrivalModel::Saturated,
    );
    let ratio = uc.gib_per_s / ud.gib_per_s;
    assert!((1.8..=2.6).contains(&ratio), "UC/UD ratio {ratio}");
}

#[test]
fn tbit_capability_with_half_the_dpa() {
    // Section VII: the current DPA generation can already drive a
    // 1.6 Tbit/s link's packet rate using 128 of its 256 threads.
    let need = 1.6e12 / 8.0 / 4096.0;
    let m = run_datapath(
        &DpaSpec::bf3(),
        &Kernel::new(KernelKind::DpaUd),
        128,
        64,
        200_000,
        ArrivalModel::Saturated,
    );
    assert!(m.chunks_per_sec >= need);
    // And 16 threads are NOT enough — the scaling is genuine.
    let m16 = run_datapath(
        &DpaSpec::bf3(),
        &Kernel::new(KernelKind::DpaUd),
        16,
        64,
        50_000,
        ArrivalModel::Saturated,
    );
    assert!(m16.chunks_per_sec < need);
}

#[test]
fn packing_threads_across_cores_scales_beyond_one_core() {
    // Threads 17+ land on core 2 (compact placement). With 64 B chunks
    // the compute path is the bottleneck (at 4 KiB the NIC inbound DMA
    // pipeline caps both configurations), so the second core must add
    // real capacity.
    let spec = DpaSpec::bf3();
    let k = Kernel::new(KernelKind::DpaUd);
    let one_core = run_datapath(&spec, &k, 16, 64, 60_000, ArrivalModel::Saturated);
    let two_cores = run_datapath(&spec, &k, 32, 64, 60_000, ArrivalModel::Saturated);
    assert!(
        two_cores.chunks_per_sec > one_core.chunks_per_sec * 1.3,
        "second core added nothing: {} vs {}",
        two_cores.chunks_per_sec,
        one_core.chunks_per_sec
    );
    // At 4 KiB, saturated throughput is NIC-bound and adding a core
    // changes little — the bottleneck shifts exactly as modeled.
    let nic_bound_16 = run_datapath(&spec, &k, 16, 4096, 40_000, ArrivalModel::Saturated);
    let nic_bound_32 = run_datapath(&spec, &k, 32, 4096, 40_000, ArrivalModel::Saturated);
    let ratio = nic_bound_32.chunks_per_sec / nic_bound_16.chunks_per_sec;
    assert!(ratio < 1.15, "4 KiB saturated should be NIC-bound: {ratio}");
}
