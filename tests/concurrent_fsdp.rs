//! The FSDP contention scenario: concurrent {Allgather, Reduce-Scatter}
//! pairs, the in-network reduction substrate, and Appendix B's speedup.

use mcast_allgather::baselines::{ring_allgather, ring_reduce_scatter, run_p2p_concurrent};
use mcast_allgather::core::{
    concurrent::run_inc_reduce_scatter, run_concurrent_ag_rs, ProtocolConfig,
};
use mcast_allgather::models::concurrent_speedup;
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::verbs::{LinkRate, Mtu};

fn star(p: u32) -> Topology {
    Topology::single_switch(p as usize, LinkRate::CX3_56G, 100)
}

#[test]
fn inc_reduce_scatter_delivers_every_shard() {
    let out = run_inc_reduce_scatter(star(8), FabricConfig::ucc_default(), Mtu::IB_4K, 128 << 10);
    assert!(out.stats.all_done());
    assert_eq!(out.rs_times.iter().flatten().count(), 8);
}

#[test]
fn inc_rs_send_bound_recv_light() {
    // Insight 2: INC RS injects N(P-1) but receives only N per rank.
    let n: u64 = 64 << 10;
    let p = 6u64;
    let out = run_inc_reduce_scatter(
        star(p as u32),
        FabricConfig::ideal(),
        Mtu::IB_4K,
        n as usize,
    );
    let topo = star(p as u32);
    assert_eq!(
        out.traffic.host_injection_bytes(&topo),
        p * n * (p - 1),
        "each rank contributes all foreign shards"
    );
    assert_eq!(
        out.traffic.host_delivery_bytes(&topo),
        p * n,
        "each rank receives exactly its reduced shard"
    );
}

#[test]
fn inc_reduction_happens_in_the_switch() {
    // On a star, P-1 contributions per shard enter the switch but only
    // ONE reduced copy leaves it: inter-switch + delivery traffic stays
    // N per rank however many peers contribute.
    for p in [3u64, 6, 10] {
        let n: u64 = 32 << 10;
        let out = run_inc_reduce_scatter(
            star(p as u32),
            FabricConfig::ideal(),
            Mtu::IB_4K,
            n as usize,
        );
        let topo = star(p as u32);
        assert_eq!(out.traffic.host_delivery_bytes(&topo), p * n, "P = {p}");
    }
}

#[test]
fn appendix_b_speedup_tracks_model() {
    let n = 256usize << 10;
    for p in [4u32, 8, 16] {
        let ring = run_p2p_concurrent(
            star(p),
            FabricConfig::ideal(),
            vec![ring_allgather(p, n), ring_reduce_scatter(p, n)],
            32 << 10,
        );
        assert!(ring.stats.all_done());
        let t_ring = ring.flow_completion_ns(0).max(ring.flow_completion_ns(1));
        let opt = run_concurrent_ag_rs(
            star(p),
            FabricConfig::ideal(),
            ProtocolConfig {
                chains: p,
                mtu: Mtu::new(16 << 10),
                ..ProtocolConfig::default()
            },
            n,
        );
        assert!(opt.stats.all_done());
        let s = t_ring as f64 / opt.pair_completion_ns() as f64;
        let model = concurrent_speedup(p);
        assert!(
            (s - model).abs() / model < 0.25,
            "P={p}: measured {s:.2} vs model {model:.2}"
        );
    }
}

#[test]
fn concurrent_pair_on_fat_tree() {
    // Not just stars: the pair must also complete on the multi-switch
    // testbed shape (reduction trees spanning leaf and spine levels).
    let topo = Topology::fat_tree_two_level(24, 3, 2, 2, LinkRate::CX3_56G, 300);
    let out = run_concurrent_ag_rs(
        topo,
        FabricConfig::ucc_default(),
        ProtocolConfig {
            chains: 4,
            mtu: Mtu::new(8 << 10),
            ..ProtocolConfig::default()
        },
        128 << 10,
    );
    assert!(out.stats.all_done(), "{:?}", out.stats);
}

#[test]
fn optimal_pair_strictly_beats_ring_pair() {
    let n = 512usize << 10;
    let p = 12u32;
    let ring = run_p2p_concurrent(
        star(p),
        FabricConfig::ideal(),
        vec![ring_allgather(p, n), ring_reduce_scatter(p, n)],
        64 << 10,
    );
    let t_ring = ring.flow_completion_ns(0).max(ring.flow_completion_ns(1));
    let opt = run_concurrent_ag_rs(
        star(p),
        FabricConfig::ideal(),
        ProtocolConfig {
            chains: p,
            mtu: Mtu::new(32 << 10),
            ..ProtocolConfig::default()
        },
        n,
    );
    assert!(
        opt.pair_completion_ns() < t_ring,
        "optimal pair must win outright"
    );
}
