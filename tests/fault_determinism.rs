//! Golden determinism of the fault-injection stack: the same
//! `FaultPlan` seed must produce **bit-identical** outcomes (fabric
//! stats, traffic reports, runtime reports) at `jobs = 1` and
//! `jobs = 4`, and a fault-free plan must be a perfect no-op against
//! the baseline fabric. Fault schedules are plain data replayed as
//! queue events, so worker count and plan presence may only change what
//! the schedule *says* — never introduce nondeterminism.

use mcast_allgather::core::des::{self, RunBounds};
use mcast_allgather::core::{CollectiveKind, ProtocolConfig};
use mcast_allgather::exec::par_map_ordered;
use mcast_allgather::faults::{FaultModel, FaultPlan};
use mcast_allgather::runtime::{JobKind, PoolConfig, Runtime, RuntimeConfig, RuntimeReport};
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::verbs::{LinkRate, Rank};
use proptest::prelude::*;

fn sweep_topo() -> Topology {
    Topology::fat_tree_two_level(8, 2, 2, 1, LinkRate::CX3_56G, 100)
}

/// One faulted collective, rendered to its full observable outcome
/// (engine stats + per-link traffic + per-rank timings) as a string so
/// equality covers every field.
fn faulted_render(kind_ix: usize, seed: u64, cutoff_headroom: u64) -> String {
    let topo = sweep_topo();
    let plan = match kind_ix {
        0 => FaultPlan::new(seed).with(FaultModel::DegradedLink {
            fraction: 0.2,
            bw_num: 1,
            bw_den: 4,
            start_ns: 5_000,
            duration_ns: 150_000,
        }),
        1 => FaultPlan::new(seed).with(FaultModel::FlappingPort {
            fraction: 0.2,
            period_ns: 40_000,
            down_ns: 10_000,
            start_ns: 0,
            end_ns: 300_000,
        }),
        _ => FaultPlan::new(seed).with(FaultModel::SwitchFailure {
            switches: 1,
            start_ns: 10_000,
            downtime_ns: 120_000,
        }),
    };
    let mut cfg = FabricConfig::ucc_default();
    cfg.faults = plan.compile(&topo);
    let out = des::run_collective_bounded(
        topo,
        cfg,
        ProtocolConfig::default(),
        CollectiveKind::Allgather,
        16 << 10,
        RunBounds {
            cutoff_headroom,
            watchdog_cutoffs: 64,
        },
    );
    // Render every simulated-time observable; wall-clock fields
    // (`wall_ns`) are measurement, not result, and are excluded.
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        out.stats.per_rank_done,
        out.stats.events,
        out.stats.peak_queue_depth,
        out.traffic.per_link(),
        out.traffic.rnr_per_rank(),
        out.timings,
        out.deadline
    )
}

#[test]
fn fault_sweep_outcomes_identical_across_worker_counts() {
    // All three models × several seeds × both cutoff settings, claimed
    // largest-first through the ordered executor — the exact shape of
    // the faultfigs sweep.
    let mut grid: Vec<(usize, u64, u64)> = Vec::new();
    for kind_ix in 0..3usize {
        for seed in 0..4u64 {
            for cutoff in [1u64, 4] {
                grid.push((kind_ix, seed, cutoff));
            }
        }
    }
    let run = |jobs: usize| -> Vec<String> {
        par_map_ordered(
            jobs,
            &grid,
            |_, &(kind_ix, _, cutoff)| (kind_ix as u64 + 1) * cutoff,
            |&(kind_ix, seed, cutoff)| faulted_render(kind_ix, seed, cutoff),
        )
        .into_iter()
        .map(|t| t.value)
        .collect()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel);
    // The renders are not all alike (faults actually vary by seed).
    assert!(serial.iter().any(|r| r != &serial[0]));
}

/// The runtime inherits fault schedules through `FabricConfig`: every
/// batch's fabric replays the same transitions, so a faulted
/// multi-tenant run must stay wave-deterministic too.
fn faulted_runtime_report(jobs: usize) -> RuntimeReport {
    let topo = Topology::single_switch(6, LinkRate::CX3_56G, 100);
    let plan = FaultPlan::new(11)
        .with(FaultModel::DegradedLink {
            fraction: 0.3,
            bw_num: 1,
            bw_den: 2,
            start_ns: 0,
            duration_ns: 500_000,
        })
        .with(FaultModel::FlappingPort {
            fraction: 0.1,
            period_ns: 50_000,
            down_ns: 8_000,
            start_ns: 10_000,
            end_ns: 200_000,
        });
    let mut fabric = FabricConfig::ucc_default();
    fabric.faults = plan.compile(&topo);
    let cfg = RuntimeConfig {
        fabric,
        pool: PoolConfig::with_capacity(4),
        max_inflight: 4,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(topo, cfg);
    let tenants: Vec<_> = (0..4)
        .map(|i| rt.register_tenant(&format!("tenant{i}")))
        .collect();
    for (i, &t) in tenants.iter().enumerate() {
        let kinds = [
            JobKind::Allgather,
            JobKind::Broadcast {
                root: Rank(i as u32),
            },
        ];
        for (j, &kind) in kinds.iter().enumerate() {
            let send_len = (8 << 10) << ((i + j) % 2);
            rt.submit(t, kind, send_len).expect("admission");
        }
    }
    rt.run_to_completion_jobs(jobs)
}

#[test]
fn faulted_runtime_report_identical_across_worker_counts() {
    let serial = faulted_runtime_report(1);
    let wave = faulted_runtime_report(4);
    assert_eq!(serial, wave);
    assert_eq!(format!("{serial:?}"), format!("{wave:?}"));
    assert_eq!(serial.completed_jobs(), 8);
    // The degraded links actually slowed the service: a healthy run of
    // the same workload finishes strictly faster.
    let healthy = {
        let topo = Topology::single_switch(6, LinkRate::CX3_56G, 100);
        let cfg = RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            max_inflight: 4,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(topo, cfg);
        let tenants: Vec<_> = (0..4)
            .map(|i| rt.register_tenant(&format!("tenant{i}")))
            .collect();
        for (i, &t) in tenants.iter().enumerate() {
            let kinds = [
                JobKind::Allgather,
                JobKind::Broadcast {
                    root: Rank(i as u32),
                },
            ];
            for (j, &kind) in kinds.iter().enumerate() {
                let send_len = (8 << 10) << ((i + j) % 2);
                rt.submit(t, kind, send_len).expect("admission");
            }
        }
        rt.run_to_completion_jobs(1)
    };
    assert!(
        serial.makespan_ns > healthy.makespan_ns,
        "faults must cost virtual time: {} vs {}",
        serial.makespan_ns,
        healthy.makespan_ns
    );
}

proptest! {
    /// A fault-free plan (every model at zero strength) compiles to an
    /// empty schedule and leaves the simulation bit-identical to a
    /// fabric that never heard of faults.
    #[test]
    fn fault_free_plan_is_a_noop(seed in 0u64..8, send_kib in 1usize..4) {
        let topo = || Topology::single_switch(4, LinkRate::CX3_56G, 100);
        let plan = FaultPlan::new(seed)
            .with(FaultModel::DegradedLink {
                fraction: 0.0,
                bw_num: 1,
                bw_den: 4,
                start_ns: 0,
                duration_ns: 1_000,
            })
            .with(FaultModel::FlappingPort {
                fraction: 0.0,
                period_ns: 10_000,
                down_ns: 1_000,
                start_ns: 0,
                end_ns: 50_000,
            })
            .with(FaultModel::SwitchFailure {
                switches: 0,
                start_ns: 0,
                downtime_ns: 1_000,
            });
        let sched = plan.compile(&topo());
        prop_assert!(sched.is_empty());

        let run = |faults| {
            let mut cfg = FabricConfig::ucc_default();
            cfg.faults = faults;
            des::run_collective(
                topo(),
                cfg,
                ProtocolConfig::default(),
                CollectiveKind::Allgather,
                send_kib << 10,
            )
        };
        let baseline = run(mcast_allgather::simnet::LinkSchedule::empty());
        let noop = run(sched);
        prop_assert!(baseline.stats.all_done() && noop.stats.all_done());
        prop_assert_eq!(baseline.stats.events, noop.stats.events);
        prop_assert_eq!(&baseline.stats.per_rank_done, &noop.stats.per_rank_done);
        prop_assert_eq!(&baseline.timings, &noop.timings);
        prop_assert_eq!(baseline.traffic.per_link(), noop.traffic.per_link());
        prop_assert_eq!(baseline.traffic.rnr_per_rank(), noop.traffic.rnr_per_rank());
    }
}
