//! Failure-injection integration tests: the slow-path reliability layer
//! under targeted and randomized loss, on both execution substrates
//! (discrete-event fabric and the real-byte threaded fabric).

use mcast_allgather::core::{des, CollectiveKind, ProtocolConfig};
use mcast_allgather::memfabric::collective::{
    allgather_fixture, expected_allgather, run_threaded, ThreadedConfig,
};
use mcast_allgather::memfabric::MemFabricConfig;
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::verbs::LinkRate;
use proptest::prelude::*;
use std::time::Duration;

#[test]
fn neighbor_also_missing_recursive_fetch() {
    // Drop the same chunk at a rank AND its left neighbor: the neighbor
    // must recover first (from its own left), then serve — the recursive
    // scheme of Section III-C.
    let mut cfg = FabricConfig::ucc_default();
    // Rank 3's left neighbor is rank 2. Both lose chunk 5 of root 0.
    cfg.drops.forced.insert((0, 5, 3));
    cfg.drops.forced.insert((0, 5, 2));
    let out = des::run_collective(
        Topology::single_switch(6, LinkRate::CX3_56G, 100),
        cfg,
        ProtocolConfig::default(),
        CollectiveKind::Allgather,
        64 << 10,
    );
    assert!(out.stats.all_done(), "{:?}", out.stats);
    assert!(out.timings[2].fetched_chunks >= 1);
    assert!(out.timings[3].fetched_chunks >= 1);
}

#[test]
fn chunk_dropped_at_every_receiver() {
    // A chunk lost by everyone except its origin: recovery must walk the
    // ring back to the origin. Forced drops are keyed by *global* PSN:
    // local chunk 20 of root 1 at 128 KiB / 4 KiB MTU (32 chunks/root).
    let chunks_per_root = (128 << 10) / 4096;
    let psn = chunks_per_root + 20;
    let mut cfg = FabricConfig::ucc_default();
    for dst in 0..6u32 {
        if dst != 1 {
            cfg.drops.forced.insert((1, psn, dst));
        }
    }
    let out = des::run_collective(
        Topology::single_switch(6, LinkRate::CX3_56G, 100),
        cfg,
        ProtocolConfig::default(),
        CollectiveKind::Allgather,
        128 << 10,
    );
    assert!(out.stats.all_done(), "{:?}", out.stats);
    let fetched: u64 = out.timings.iter().map(|t| t.fetched_chunks).sum();
    assert!(fetched >= 5, "all five victims must fetch, got {fetched}");
}

#[test]
fn broadcast_root_chunk_storm() {
    // Drop a swath of the root's chunks at half the leaves.
    let mut cfg = FabricConfig::ucc_default();
    for psn in 4..12u32 {
        for dst in [1u32, 3, 5, 7] {
            cfg.drops.forced.insert((0, psn, dst));
        }
    }
    let out = des::run_collective(
        Topology::single_switch(8, LinkRate::CX3_56G, 100),
        cfg,
        ProtocolConfig::default(),
        CollectiveKind::Broadcast {
            root: mcast_allgather::verbs::Rank(0),
        },
        128 << 10,
    );
    assert!(out.stats.all_done(), "{:?}", out.stats);
    let fetched: u64 = out.timings.iter().map(|t| t.fetched_chunks).sum();
    assert_eq!(fetched, 8 * 4, "every dropped chunk fetched exactly once");
}

#[test]
fn recovery_traffic_is_accounted_as_data() {
    // The fetched bytes must show up on the wire (RDMA read responses).
    let mut cfg = FabricConfig::ideal();
    cfg.drops.forced.insert((0, 0, 2));
    let clean = des::run_collective(
        Topology::single_switch(4, LinkRate::CX3_56G, 100),
        FabricConfig::ideal(),
        ProtocolConfig::default(),
        CollectiveKind::Allgather,
        32 << 10,
    );
    let lossy = des::run_collective(
        Topology::single_switch(4, LinkRate::CX3_56G, 100),
        cfg,
        ProtocolConfig::default(),
        CollectiveKind::Allgather,
        32 << 10,
    );
    assert!(lossy.stats.all_done());
    assert!(
        lossy.traffic.total_data_bytes() > clean.traffic.total_data_bytes() - 4096,
        "recovery read bytes missing from counters"
    );
}

#[test]
fn threaded_fabric_survives_sustained_loss_rates() {
    for (drop, seed) in [(0.02, 1u64), (0.10, 2), (0.25, 3)] {
        let (plan, bufs) = allgather_fixture(4, 48 << 10, 1, 1);
        let cfg = ThreadedConfig {
            fabric: MemFabricConfig::faulty(drop, 0.1, seed),
            cutoff: Duration::from_millis(15),
            watchdog: Duration::from_secs(60),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        let expect = expected_allgather(&bufs);
        for (r, got) in report.recv_bufs.iter().enumerate() {
            assert_eq!(got, &expect, "rank {r} corrupted at drop rate {drop}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized end-to-end: any (P, N, loss, reorder) combination must
    /// converge byte-exactly on the threaded fabric.
    #[test]
    fn threaded_allgather_always_converges(
        p in 2u32..7,
        n_kib in 1usize..48,
        drop in 0.0f64..0.2,
        reorder in 0.0f64..0.4,
        seed: u64,
    ) {
        let (plan, bufs) = allgather_fixture(p, n_kib << 10, 1, 1);
        let cfg = ThreadedConfig {
            fabric: MemFabricConfig::faulty(drop, reorder, seed),
            cutoff: Duration::from_millis(10),
            watchdog: Duration::from_secs(60),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        let expect = expected_allgather(&bufs);
        for got in &report.recv_bufs {
            prop_assert_eq!(got, &expect);
        }
    }

    /// Randomized forced drops on the DES fabric always recover.
    #[test]
    fn des_forced_drops_always_recover(
        drops in prop::collection::hash_set((0u32..5, 0u32..16, 0u32..5), 0..24),
    ) {
        let mut cfg = FabricConfig::ucc_default();
        for (origin, psn, dst) in drops {
            cfg.drops.forced.insert((origin, psn, dst));
        }
        let out = des::run_collective(
            Topology::single_switch(5, LinkRate::CX3_56G, 100),
            cfg,
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            64 << 10,
        );
        prop_assert!(out.stats.all_done());
    }
}
