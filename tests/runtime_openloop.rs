//! The open-loop runtime end to end: seeded arrival streams driven
//! through the resource-driven pipelined scheduler must be
//! byte-identical across simulation worker counts, and the indexed
//! job queue must batch exactly like the original full-scan scheduler
//! on closed-loop inputs.

use mcast_allgather::runtime::{
    merge_arrivals, nccl_style_trace, AdmissionPolicy, Arrival, JobId, JobKind, JobQueue, JobSpec,
    OpMix, PoolConfig, RateProcess, Runtime, RuntimeConfig, RuntimeReport, TenantId, Workload,
};
use mcast_allgather::simnet::Topology;
use mcast_allgather::verbs::LinkRate;
use proptest::prelude::*;
use std::collections::VecDeque;

/// A mixed open-loop workload: a Poisson stream over an NCCL-style
/// op/size mix merged with a deterministic NCCL-style rung trace.
fn mixed_run(jobs: usize) -> RuntimeReport {
    let mix = OpMix {
        allgather_weight: 2,
        broadcast_weight: 1,
        agrs_weight: 1,
        min_send_len: 8 << 10,
        max_send_len: 32 << 10,
        ranks: 4,
    };
    let poisson = Workload {
        tenants: 8,
        horizon_ns: 4_000_000,
        rate: RateProcess::Poisson {
            mean_interarrival_ns: 60_000,
        },
        mix,
        seed: 11,
    }
    .generate();
    let trace = nccl_style_trace(4, mix, 120_000);
    let arrivals = merge_arrivals(&[poisson, trace]);
    assert!(!arrivals.is_empty());

    let mut rt = Runtime::new(
        Topology::single_switch(4, LinkRate::CX3_56G, 100),
        RuntimeConfig {
            pool: PoolConfig::with_capacity(24),
            max_inflight: 4,
            partitions: 2,
            ..RuntimeConfig::default()
        },
    );
    for i in 0..8 {
        rt.register_tenant(&format!("t{i}"));
    }
    rt.load_arrivals(&arrivals);
    rt.run_open_loop_jobs(jobs)
}

#[test]
fn golden_mixed_open_loop_identical_across_worker_counts() {
    let serial = mixed_run(1);
    // Not trivially identical: the run exercised the interesting paths.
    assert!(serial.completed_jobs() > 50);
    assert!(serial.batches > 10);
    assert!(serial.offered_jobs >= serial.completed_jobs() as u64);
    assert!(serial.partitions.iter().all(|p| p.batches > 0));
    for jobs in [2usize, 4] {
        let parallel = mixed_run(jobs);
        assert_eq!(serial, parallel, "open-loop run diverged at jobs={jobs}");
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "debug render diverged at jobs={jobs}"
        );
    }
}

#[test]
fn throttled_rejections_are_attributed_distinctly() {
    let mut rt = Runtime::new(
        Topology::single_switch(4, LinkRate::CX3_56G, 100),
        RuntimeConfig {
            admission: AdmissionPolicy {
                throttle_sojourn_ns: Some(1),
                ..AdmissionPolicy::default()
            },
            ..RuntimeConfig::default()
        },
    );
    let t = rt.register_tenant("t0");
    let mut arrivals = vec![Arrival {
        arrival_ns: 0,
        tenant: t,
        kind: JobKind::Allgather,
        send_len: 16 << 10,
    }];
    for i in 0..4u64 {
        arrivals.push(Arrival {
            arrival_ns: 30_000_000 + i,
            tenant: t,
            kind: JobKind::Allgather,
            send_len: 16 << 10,
        });
    }
    rt.load_arrivals(&arrivals);
    let report = rt.run_open_loop();
    assert_eq!(report.rejects.throttled, 4);
    assert_eq!(report.rejects.queue_full, 0, "throttle, not queue bound");
    assert_eq!(report.completed_jobs(), 1);
}

/// The pre-refactor scheduler, reimplemented naively: per-tenant FIFOs
/// scanned in full from a rotating cursor, at most one job per tenant,
/// head-of-line jobs skipped when their group demand exceeds the
/// remaining budget.
struct ReferenceQueue {
    fifos: Vec<VecDeque<(u64, u32)>>,
    cursor: usize,
}

impl ReferenceQueue {
    fn new(tenants: usize) -> ReferenceQueue {
        ReferenceQueue {
            fifos: vec![VecDeque::new(); tenants],
            cursor: 0,
        }
    }

    fn push(&mut self, tenant: usize, id: u64, demand: u32) {
        self.fifos[tenant].push_back((id, demand));
    }

    fn pick_batch(&mut self, max_jobs: usize, group_budget: usize) -> Vec<u64> {
        let n = self.fifos.len();
        let mut picked = Vec::new();
        let mut budget = group_budget;
        let start = self.cursor;
        for off in 0..n {
            if picked.len() >= max_jobs {
                break;
            }
            let t = (start + off) % n;
            let Some(&(id, demand)) = self.fifos[t].front() else {
                continue;
            };
            if demand as usize > budget {
                continue;
            }
            budget -= demand as usize;
            self.fifos[t].pop_front();
            self.cursor = (t + 1) % n;
            picked.push(id);
        }
        picked
    }
}

fn pending(tenant: usize, id: u64, demand: u32) -> mcast_allgather::runtime::job::PendingJob {
    mcast_allgather::runtime::job::PendingJob {
        id: JobId(id),
        spec: JobSpec {
            tenant: TenantId(tenant as u32),
            kind: JobKind::Allgather,
            send_len: 4096,
        },
        submitted_ns: 0,
        group_demand: demand,
        attempt: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On closed-loop inputs (no busy marks — every lane stays eligible,
    /// exactly the pre-refactor world) the indexed ready-list scheduler
    /// must pick identical batches, in identical order, as the full-scan
    /// reference, across interleaved pushes and picks.
    #[test]
    fn indexed_queue_batches_like_full_scan(
        tenants in 1usize..9,
        ops in prop::collection::vec((0u8..4, 0usize..64, 1u32..4), 1..80),
    ) {
        let mut indexed = JobQueue::new();
        for _ in 0..tenants {
            indexed.add_tenant();
        }
        let mut reference = ReferenceQueue::new(tenants);
        let mut next_id = 0u64;
        for &(op, arg, demand) in &ops {
            if op == 0 {
                // Drain step: budget varies so head-of-line skips happen.
                let max_jobs = 1 + arg % 6;
                let budget = 1 + arg % 8;
                let got: Vec<u64> =
                    indexed.pick_batch(max_jobs, budget).iter().map(|j| j.id.0).collect();
                let want = reference.pick_batch(max_jobs, budget);
                prop_assert_eq!(got, want, "batch diverged");
            } else {
                let t = arg % tenants;
                indexed.push(pending(t, next_id, demand));
                reference.push(t, next_id, demand);
                next_id += 1;
            }
        }
        // Final drain: both must empty identically.
        loop {
            let got: Vec<u64> = indexed.pick_batch(4, 6).iter().map(|j| j.id.0).collect();
            let want = reference.pick_batch(4, 6);
            prop_assert_eq!(&got, &want, "drain diverged");
            if got.is_empty() {
                break;
            }
        }
        prop_assert!(indexed.is_empty());
    }
}
