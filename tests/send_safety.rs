//! Compile-time `Send` guarantees for the simulation stack.
//!
//! The fork-join sweep executor moves whole simulations — fabric, rank
//! apps, owned result sinks — onto worker threads, which is only sound
//! because every layer is `Send`. These checks make the property a named
//! build-time contract: reintroducing an `Rc<RefCell<…>>` result sink
//! anywhere in the stack fails to *compile* this suite rather than
//! silently re-serializing every sweep and runtime wave.

use mcag_bench::parallel::SweepJob;
use mcast_allgather::baselines::{ring_allgather, run_p2p};
use mcast_allgather::core::{
    des, AgRsDuplexApp, CollectiveKind, CollectiveOutcome, ControlMsg, IncRsApp, McastRankApp,
    MultiCommApp, ProtocolConfig,
};
use mcast_allgather::runtime::Runtime;
use mcast_allgather::simnet::{Fabric, FabricConfig, RankApp, Topology};
use mcast_allgather::verbs::LinkRate;

fn assert_send<T: Send>() {}
fn assert_send_value<T: Send>(v: T) -> T {
    v
}

#[test]
fn fabric_is_send() {
    // The fabric itself (event queue, packet slab, NIC state, RNG) and
    // any boxed app installed into it.
    assert_send::<Fabric<ControlMsg>>();
    assert_send::<Fabric<()>>();
    assert_send::<Box<dyn RankApp<ControlMsg>>>();
}

#[test]
fn protocol_apps_are_send() {
    // Every endpoint the drivers install: the protocol state machine,
    // the INC Reduce-Scatter half, and the composite muxes.
    assert_send::<McastRankApp>();
    assert_send::<IncRsApp>();
    assert_send::<AgRsDuplexApp>();
    assert_send::<MultiCommApp>();
}

#[test]
fn sweep_job_and_outcome_are_send() {
    // The parallel-scaling sweep's job descriptor and what a simulation
    // returns — both must cross thread boundaries.
    assert_send::<SweepJob>();
    assert_send::<CollectiveOutcome>();
    assert_send::<Runtime>();
}

#[test]
fn sweep_closures_move_to_worker_threads() {
    // The executable proof: a fully wired simulation closure (the exact
    // shape every figure sweep builds) runs on a spawned thread.
    let sim = move || {
        let out = des::run_collective(
            Topology::single_switch(4, LinkRate::CX3_56G, 100),
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            8 << 10,
        );
        assert!(out.stats.all_done());
        out.completion_ns()
    };
    let sim = assert_send_value(sim);
    let threaded = std::thread::spawn(sim).join().unwrap();
    assert!(threaded > 0);

    // Same for a P2P baseline run (its ScheduleApp is Send too).
    let p2p = assert_send_value(move || {
        let out = run_p2p(
            Topology::single_switch(4, LinkRate::CX3_56G, 100),
            FabricConfig::ideal(),
            ring_allgather(4, 8 << 10),
            4096,
        );
        assert!(out.stats.all_done());
        out.flow_completion_ns(0)
    });
    assert!(std::thread::spawn(p2p).join().unwrap() > 0);
}
