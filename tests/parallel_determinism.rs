//! Golden determinism of the parallel executor: the same sweep and the
//! same runtime workload must produce **byte-identical** results at
//! `jobs = 1` and `jobs = 4`. The executor slots outputs by input index
//! and every simulation owns its fabric, seeds, and sinks, so worker
//! count may only move wall clock — never a single reported value.

use mcast_allgather::core::{des, CollectiveKind, CollectiveOutcome, ProtocolConfig};
use mcast_allgather::exec::par_map;
use mcast_allgather::runtime::{
    JobKind, PoolConfig, Runtime, RuntimeConfig, RuntimeReport, TenantId,
};
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::verbs::{LinkRate, Rank};

/// The 188-node UCC-testbed Allgather sweep (the Fig. 10/11 shape) at
/// `jobs` worker threads.
fn sweep_188(jobs: usize) -> Vec<CollectiveOutcome> {
    let sizes = [16usize << 10, 32 << 10, 64 << 10];
    par_map(jobs, &sizes, |&n| {
        let out = des::run_collective(
            Topology::ucc_testbed(),
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            n,
        );
        assert!(out.stats.all_done(), "n={n}");
        out
    })
}

#[test]
fn allgather_188_sweep_identical_across_worker_counts() {
    let serial = sweep_188(1);
    let parallel = sweep_188(4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        // Per-rank phase timings, engine stats, and every per-link
        // traffic counter — the full observable outcome.
        assert_eq!(s.timings, p.timings);
        assert_eq!(s.stats.end_time, p.stats.end_time);
        assert_eq!(s.stats.events, p.stats.events);
        assert_eq!(s.stats.per_rank_done, p.stats.per_rank_done);
        assert_eq!(s.stats.peak_queue_depth, p.stats.peak_queue_depth);
        assert_eq!(s.traffic.per_link(), p.traffic.per_link());
        assert_eq!(s.rnr_drops, p.rnr_drops);
        assert_eq!(s.fabric_drops, p.fabric_drops);
    }
}

/// A mixed multi-tenant workload: 4 tenants, three jobs each, all three
/// collective kinds, over a bounded group pool (forces several batches
/// and LRU churn).
fn build_runtime() -> (Runtime, Vec<TenantId>) {
    let cfg = RuntimeConfig {
        pool: PoolConfig::with_capacity(4),
        max_inflight: 4,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(Topology::single_switch(6, LinkRate::CX3_56G, 100), cfg);
    let tenants: Vec<TenantId> = (0..4)
        .map(|i| rt.register_tenant(&format!("tenant{i}")))
        .collect();
    for (i, &t) in tenants.iter().enumerate() {
        let kinds = [
            JobKind::Allgather,
            JobKind::Broadcast {
                root: Rank(i as u32),
            },
            JobKind::AgRs,
        ];
        for (j, &kind) in kinds.iter().enumerate() {
            let send_len = (16 << 10) << ((i + j) % 2);
            rt.submit(t, kind, send_len).expect("admission");
        }
    }
    (rt, tenants)
}

fn run_runtime(jobs: Option<usize>) -> RuntimeReport {
    let (mut rt, _) = build_runtime();
    match jobs {
        None => rt.run_to_completion(),
        Some(j) => rt.run_to_completion_jobs(j),
    }
}

#[test]
fn runtime_report_identical_across_worker_counts() {
    // The serial batch-by-batch path is the reference.
    let reference = run_runtime(None);
    assert!(reference.completed_jobs() == 12 && reference.batches >= 3);
    for jobs in [1usize, 4] {
        let wave = run_runtime(Some(jobs));
        // Full structural equality: every JobRecord, TenantStats, pool
        // counter, makespan, and moved-bytes total.
        assert_eq!(wave, reference, "jobs={jobs}");
        // And the serialized view (total Debug rendering) — the
        // belt-and-suspenders check that no field escapes PartialEq.
        assert_eq!(format!("{wave:?}"), format!("{reference:?}"), "jobs={jobs}");
    }
}

#[test]
fn traffic_totals_survive_wave_execution() {
    let serial = run_runtime(Some(1));
    let wave = run_runtime(Some(4));
    assert_eq!(serial.moved_bytes, wave.moved_bytes);
    assert_eq!(serial.delivered_bytes, wave.delivered_bytes);
    assert!(serial.moved_bytes > 0);
}
