//! Workspace-wiring smoke test: every layer the facade re-exports must be
//! reachable through `mcast_allgather::` and one representative type from
//! each must construct. Catches broken `pub use` edges and manifest
//! mis-wiring before any deeper test runs.

use mcast_allgather::verbs::LinkRate;

#[test]
fn verbs_reachable_and_constructs() {
    let mtu = mcast_allgather::verbs::Mtu::IB_4K;
    assert_eq!(mtu.chunks_for(4096), 1);
    let rank = mcast_allgather::verbs::Rank(3);
    assert_eq!(rank.0, 3);
}

#[test]
fn simnet_reachable_and_constructs() {
    let topo = mcast_allgather::simnet::Topology::single_switch(4, LinkRate::CX3_56G, 100);
    assert_eq!(topo.num_hosts(), 4);
    let _cfg = mcast_allgather::simnet::FabricConfig::ucc_default();
}

#[test]
fn core_reachable_and_constructs() {
    use mcast_allgather::verbs::{CollectiveId, ImmLayout, Mtu};
    let _cfg = mcast_allgather::core::ProtocolConfig::default();
    let plan = mcast_allgather::core::CollectivePlan::new(
        mcast_allgather::core::CollectiveKind::Allgather,
        4,
        64 << 10,
        Mtu::IB_4K,
        ImmLayout::DEFAULT,
        CollectiveId(1),
        1,
        1,
    );
    assert!(plan.total_chunks() > 0);
    let bm = mcast_allgather::core::ChunkBitmap::new(16);
    assert_eq!(bm.count(), 0);
}

#[test]
fn baselines_reachable_and_constructs() {
    let sched = mcast_allgather::baselines::ring_allgather(4, 4096);
    assert_eq!(sched.len(), 4);
}

#[test]
fn dpa_reachable_and_constructs() {
    let spec = mcast_allgather::dpa::DpaSpec::bf3();
    assert!(spec.total_threads() > 0);
}

#[test]
fn models_reachable_and_constructs() {
    let sizing = mcast_allgather::models::BitmapSizing::new(24, 4096);
    assert!(sizing.fits(u64::MAX));
}

#[test]
fn memfabric_reachable_and_constructs() {
    let bm = mcast_allgather::memfabric::AtomicBitmap::new(64);
    assert!(bm.set(7));
    assert!(!bm.set(7));
}

#[test]
fn exec_reachable_and_maps() {
    let doubled = mcast_allgather::exec::par_map(2, &[1u32, 2, 3], |&x| x * 2);
    assert_eq!(doubled, vec![2, 4, 6]);
    assert!(mcast_allgather::exec::default_jobs() >= 1);
    let timed =
        mcast_allgather::exec::par_map_ordered(2, &[1u32, 2, 3], |_, &x| x as u64, |&x| x * 2);
    assert_eq!(timed.iter().map(|t| t.value).collect::<Vec<_>>(), doubled);
}

#[test]
fn faults_reachable_and_compiles_plans() {
    use mcast_allgather::faults::{FaultModel, FaultPlan};
    let topo = mcast_allgather::simnet::Topology::single_switch(4, LinkRate::CX3_56G, 100);
    let sched = FaultPlan::new(9)
        .with(FaultModel::SwitchFailure {
            switches: 1,
            start_ns: 1_000,
            downtime_ns: 5_000,
        })
        .compile(&topo);
    // The star's one switch touches every link, both directions.
    assert_eq!(sched.len(), 2 * topo.num_links());
}

#[test]
fn trace_reachable_and_records() {
    use mcast_allgather::trace::{TraceEvent, TraceSink, TraceSpec};
    let mut sink = TraceSink::new(TraceSpec::with_capacity(4));
    sink.record(TraceEvent::QueueDepth { at_ns: 7, depth: 1 });
    assert_eq!(sink.len(), 1);
    assert_eq!(sink.dropped(), 0);
    let tr = mcast_allgather::trace::RuntimeTrace::default();
    let doc = mcast_allgather::trace::export_chrome(
        &tr,
        &mcast_allgather::trace::ChromeOptions::default(),
    );
    mcast_allgather::trace::validate_json(&doc).expect("empty trace still exports valid JSON");
}

#[test]
fn offload_reachable_and_compiles_to_host_models() {
    use mcast_allgather::offload::{BackendKind, Placement};
    for kind in BackendKind::ALL {
        let be = kind.instantiate();
        assert_eq!(be.kind(), kind);
        let hm = be.host_model(4096);
        assert!(hm.rq_depth > 0);
        // Only in-switch backends hold fabric-resident reduction state.
        assert_eq!(
            be.limits().aggregation_entries.is_some(),
            be.placement() == Placement::InSwitch
        );
    }
    assert!(
        mcast_allgather::models::algbw_gbps(125_000_000, 1_000_000) > 999.0,
        "models::algbw_gbps must be reachable through the facade"
    );
}

#[test]
fn runtime_reachable_and_constructs() {
    let topo = mcast_allgather::simnet::Topology::single_switch(4, LinkRate::CX3_56G, 100);
    let mut rt = mcast_allgather::runtime::Runtime::new(
        topo,
        mcast_allgather::runtime::RuntimeConfig::default(),
    );
    let t = rt.register_tenant("smoke");
    assert_eq!(t, mcast_allgather::runtime::TenantId(0));
    let pool = mcast_allgather::runtime::McastGroupPool::new(
        mcast_allgather::runtime::PoolConfig::with_capacity(2),
    );
    assert_eq!(pool.capacity(), 2);
}
