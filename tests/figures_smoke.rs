//! Smoke tests for the figure harness: every generator must produce a
//! well-formed table. (The heavy 188-node figures are `#[ignore]`d here
//! and exercised by the `figures` binary / `cargo bench`.)

use mcag_bench::{generate, FigData};

fn check(f: &FigData) {
    assert!(!f.rows.is_empty(), "{}: empty table", f.id);
    for row in &f.rows {
        assert_eq!(row.len(), f.columns.len(), "{}: ragged row", f.id);
    }
    let rendered = f.render();
    assert!(rendered.contains(&f.id));
    let csv = f.to_csv();
    assert_eq!(csv.lines().count(), f.rows.len() + 1);
}

#[test]
fn fig2_shape() {
    check(&generate("fig2"));
}

#[test]
fn fig3_shape() {
    check(&generate("fig3"));
}

#[test]
fn fig5_shape() {
    let f = generate("fig5");
    check(&f);
    // The DPA column must dominate both CPU columns at 8 MiB.
    let last = f.rows.last().unwrap();
    let ucx: f64 = last[1].parse().unwrap();
    let rc: f64 = last[2].parse().unwrap();
    let dpa: f64 = last[3].parse().unwrap();
    assert!(dpa > rc && rc > ucx, "fig5 ordering broken: {last:?}");
}

#[test]
fn fig7_shape() {
    check(&generate("fig7"));
}

#[test]
fn table1_shape() {
    check(&generate("table1"));
}

#[test]
fn fig13_and_fig14_shapes() {
    check(&generate("fig13"));
    check(&generate("fig14"));
}

#[test]
fn fig15_shape() {
    let f = generate("fig15");
    check(&f);
    // 64 KiB chunks reach line rate with one thread.
    let last = f.rows.last().unwrap();
    let one_thr: f64 = last[1].parse().unwrap();
    assert!(one_thr > 185.0, "fig15 64KiB single-thread: {one_thr}");
}

#[test]
fn fig16_shape() {
    check(&generate("fig16"));
}

#[test]
fn appb_shape() {
    check(&generate("appb"));
}

#[test]
fn faultfigs_smoke_shape() {
    let f = generate("faultfigs_smoke");
    check(&f);
    // One row per (model, rate, cutoff) cell; all three models present.
    assert_eq!(f.rows.len(), 6);
    for model in ["degraded", "flapping", "switch"] {
        assert!(f.rows.iter().any(|r| r[0] == model), "{model} missing");
    }
    // Quantiles are ordered within every cell.
    for r in &f.rows {
        let p50: f64 = r[3].parse().unwrap();
        let p99: f64 = r[4].parse().unwrap();
        let p999: f64 = r[5].parse().unwrap();
        assert!(p50 <= p99 && p99 <= p999, "tail out of order: {r:?}");
    }
    // Per-seed wall times ride along for timings.csv.
    assert!(!f.job_wall_ms.is_empty());
}

#[test]
fn recoveryfigs_smoke_shape() {
    let f = generate("recoveryfigs_smoke");
    check(&f);
    // One oblivious + one reactive row per (model, rate) pair, and the
    // headline inequality holds in the rendered table too.
    assert_eq!(f.rows.len() % 2, 0);
    for pair in f.rows.chunks(2) {
        let [obl, rea] = pair else { unreachable!() };
        assert_eq!(obl[2], "oblivious");
        assert_eq!(rea[2], "reactive");
        assert_eq!((&obl[0], &obl[1]), (&rea[0], &rea[1]), "pairs misaligned");
        let p999 = |r: &Vec<String>| r[10].parse::<f64>().unwrap();
        assert!(p999(rea) < p999(obl), "reactive tail must win: {pair:?}");
    }
    for model in ["flapping", "switch"] {
        assert!(f.rows.iter().any(|r| r[0] == model), "{model} missing");
    }
}

#[test]
#[ignore = "full 188-node sweep (~20 s in release); run with --ignored"]
fn fig10_shape() {
    check(&generate("fig10"));
}

#[test]
#[ignore = "full 188-node sweep (~30 s in release); run with --ignored"]
fn fig11_shape() {
    check(&generate("fig11"));
}

#[test]
#[ignore = "10-iteration counter sweep (~15 s in release); run with --ignored"]
fn fig12_shape() {
    let f = generate("fig12");
    check(&f);
    // The headline: both savings ratios in the paper's 1.5-2x band.
    for row in f.rows.iter().filter(|r| r[1].contains("ours")) {
        let ratio: f64 = row[3].trim_end_matches('x').parse().unwrap();
        assert!((1.5..=2.2).contains(&ratio), "savings {ratio}");
    }
}
