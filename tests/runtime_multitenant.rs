//! The multi-tenant runtime layer end to end: deterministic scheduling,
//! group-pool eviction/rebuild accounting, the admission-control
//! rejection paths, and the LRU inclusion property (hit rate monotone in
//! pool capacity).

use mcast_allgather::runtime::{
    AdmissionPolicy, JobKind, PoolConfig, RejectReason, Runtime, RuntimeConfig, RuntimeReport,
    TenantId,
};
use mcast_allgather::simnet::Topology;
use mcast_allgather::verbs::{LinkRate, Rank};
use proptest::prelude::*;

fn star(p: usize) -> Topology {
    Topology::single_switch(p, LinkRate::CX3_56G, 100)
}

/// Mixed workload over `tenants` tenants: heavy first tenant, mixed
/// kinds, skewed sizes.
fn mixed_workload(rt: &mut Runtime, tenants: usize) {
    let ids: Vec<TenantId> = (0..tenants)
        .map(|i| rt.register_tenant(&format!("t{i}")))
        .collect();
    for (i, &t) in ids.iter().enumerate() {
        let jobs = if i == 0 { 4 } else { 2 };
        for j in 0..jobs {
            let kind = match (i + j) % 3 {
                0 => JobKind::Allgather,
                1 => JobKind::Broadcast {
                    root: Rank((i % 6) as u32),
                },
                _ => JobKind::AgRs,
            };
            rt.submit(t, kind, (8 << 10) << (j % 2)).unwrap();
        }
    }
}

fn run_mixed(tenants: usize, capacity: usize) -> RuntimeReport {
    let mut rt = Runtime::new(
        star(6),
        RuntimeConfig {
            pool: PoolConfig::with_capacity(capacity),
            max_inflight: 4,
            ..RuntimeConfig::default()
        },
    );
    mixed_workload(&mut rt, tenants);
    rt.run_to_completion()
}

#[test]
fn scheduled_completions_are_deterministic() {
    let a = run_mixed(6, 4);
    let b = run_mixed(6, 4);
    assert_eq!(a, b, "identical submissions must replay identically");
    // And not trivially: timings, batches and pool churn all happened.
    assert!(a.batches > 1);
    assert!(a.jobs.iter().all(|j| j.finished_ns > 0));
}

#[test]
fn acceptance_eight_tenants_over_small_pool() {
    // The PR acceptance shape: ≥ 8 tenants, pool smaller than the tenant
    // count, hit rate < 100%, every admitted job completes.
    let report = run_mixed(8, 5);
    let submitted: u64 = report.tenants.iter().map(|t| t.submitted).sum();
    assert_eq!(report.completed_jobs() as u64, submitted);
    assert!(submitted >= 8 * 2);
    assert!(report.hit_rate() < 1.0);
    assert!(report.pool.evictions > 0, "5 slots < 8 tenants must churn");
    for rec in &report.jobs {
        assert!(rec.finished_ns >= rec.started_ns);
        assert!(rec.started_ns >= rec.submitted_ns);
    }
}

#[test]
fn eviction_and_rebuild_accounting() {
    let small = run_mixed(6, 3);
    let large = run_mixed(6, 64);
    // Small table: every rebuild evicts exactly one group, and the books
    // must balance: acquisitions = hits + builds + rebuilds.
    assert!(small.pool.rebuilds > 0);
    assert_eq!(small.pool.evictions, small.pool.rebuilds);
    let total_outcomes: u64 = small
        .jobs
        .iter()
        .map(|j| (j.group_hits + j.group_builds + j.group_rebuilds) as u64)
        .sum();
    assert_eq!(total_outcomes, small.pool.acquisitions());
    // Large table: nothing is ever evicted, and the SM time saved shows
    // up as a shorter makespan.
    assert_eq!(large.pool.evictions, 0);
    assert_eq!(large.pool.rebuilds, 0);
    assert!(large.pool.hits > 0);
    assert!(
        large.makespan_ns < small.makespan_ns,
        "rebuild churn must cost simulated time: {} vs {}",
        large.makespan_ns,
        small.makespan_ns
    );
}

#[test]
fn admission_rejects_and_counts() {
    let mut rt = Runtime::new(
        star(4),
        RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            admission: AdmissionPolicy {
                max_queued_total: 4,
                max_queued_per_tenant: 2,
                max_send_len: 1 << 20,
                throttle_sojourn_ns: None,
            },
            max_inflight: 2,
            ..RuntimeConfig::default()
        },
    );
    let a = rt.register_tenant("greedy");
    let b = rt.register_tenant("other");

    // Unknown tenant.
    assert_eq!(
        rt.submit(TenantId(99), JobKind::Allgather, 4096),
        Err(RejectReason::UnknownTenant)
    );
    // Size limits.
    assert_eq!(
        rt.submit(a, JobKind::Allgather, 0),
        Err(RejectReason::Empty)
    );
    assert_eq!(
        rt.submit(a, JobKind::Allgather, 2 << 20),
        Err(RejectReason::TooLarge)
    );
    // Broadcast root out of range.
    assert_eq!(
        rt.submit(a, JobKind::Broadcast { root: Rank(7) }, 4096),
        Err(RejectReason::InvalidRoot)
    );
    // Per-tenant quota: third pending job refused.
    rt.submit(a, JobKind::Allgather, 4096).unwrap();
    rt.submit(a, JobKind::Allgather, 4096).unwrap();
    assert_eq!(
        rt.submit(a, JobKind::Allgather, 4096),
        Err(RejectReason::TenantQuota)
    );
    // Global queue depth: 2 + 2 pending fills the queue of 4.
    rt.submit(b, JobKind::Allgather, 4096).unwrap();
    rt.submit(b, JobKind::Allgather, 4096).unwrap();
    assert_eq!(
        rt.submit(b, JobKind::Allgather, 4096),
        Err(RejectReason::QueueFull)
    );

    let report = rt.run_to_completion();
    assert_eq!(report.completed_jobs(), 4, "admitted jobs still complete");
    assert_eq!(report.tenants[a.idx()].rejected, 4);
    assert_eq!(report.tenants[b.idx()].rejected, 1);
    assert_eq!(report.tenants[a.idx()].completed, 2);
}

#[test]
fn group_demand_rejected_when_pool_too_small() {
    // 4 subgroups + 1 reduction tree > 4-slot pool.
    let mut rt = Runtime::new(
        star(4),
        RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            proto: mcast_allgather::core::ProtocolConfig::parallel(4, 1),
            ..RuntimeConfig::default()
        },
    );
    let t = rt.register_tenant("wide");
    assert_eq!(
        rt.submit(t, JobKind::AgRs, 64 << 10),
        Err(RejectReason::GroupDemand)
    );
    // The plain Allgather (4 groups) still fits exactly.
    rt.submit(t, JobKind::Allgather, 64 << 10).unwrap();
    let report = rt.run_to_completion();
    assert_eq!(report.completed_jobs(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// LRU is a stack algorithm: with the batch shape held fixed
    /// (`max_inflight` ≤ every capacity tested, single-group jobs, so
    /// the acquisition sequence is identical), the pool hit count is
    /// monotone non-decreasing in capacity.
    #[test]
    fn pool_hit_rate_monotone_in_capacity(
        tenants in 2usize..6,
        jobs_per_tenant in 1usize..4,
        cap_small in 2usize..6,
        cap_extra in 1usize..8,
    ) {
        let run = |capacity: usize| {
            let mut rt = Runtime::new(
                star(4),
                RuntimeConfig {
                    pool: PoolConfig::with_capacity(capacity),
                    max_inflight: 2,
                    ..RuntimeConfig::default()
                },
            );
            let ids: Vec<TenantId> = (0..tenants)
                .map(|i| rt.register_tenant(&format!("t{i}")))
                .collect();
            for &t in &ids {
                for _ in 0..jobs_per_tenant {
                    rt.submit(t, JobKind::Allgather, 8 << 10).unwrap();
                }
            }
            rt.run_to_completion()
        };
        let small = run(cap_small);
        let large = run(cap_small + cap_extra);
        prop_assert_eq!(
            small.pool.acquisitions(),
            large.pool.acquisitions(),
            "fixed batching must produce the same acquisition sequence"
        );
        prop_assert!(
            large.pool.hits >= small.pool.hits,
            "hits {} at capacity {} < hits {} at capacity {}",
            large.pool.hits, cap_small + cap_extra, small.pool.hits, cap_small
        );
    }
}
