//! Golden guarantees of the fault-aware scheduling stack:
//!
//! * a **reactive faulted multi-tenant run** — damaged partition,
//!   steering, quarantine, retries, SM telemetry — is byte-identical at
//!   `jobs = 1` and `jobs = 4`, report *and* flight-recorder trace;
//! * on the golden scenario, the reactive scheduler's p999 sojourn is
//!   strictly no worse than the oblivious scheduler's over the same
//!   per-seed hazards and arrival streams;
//! * the retry pipeline is observable end to end: a dead fabric censors
//!   every attempt, the retry counters reconcile, and the record carries
//!   the attempt count.

use mcag_bench::recoveryfigs::{run_one, RecoveryFault, RecoveryRun};
use mcast_allgather::faults::{FaultModel, FaultPlan};
use mcast_allgather::runtime::{
    JobKind, OpMix, PoolConfig, RateProcess, ReactivePolicy, Runtime, RuntimeConfig, RuntimeReport,
    RuntimeTrace, TraceSpec, Workload,
};
use mcast_allgather::simnet::{LinkSchedule, Topology};
use mcast_allgather::trace::{export_chrome, ChromeOptions};
use mcast_allgather::verbs::LinkRate;

fn golden_topo() -> Topology {
    Topology::fat_tree_two_level(8, 2, 2, 1, LinkRate::CX3_56G, 100)
}

/// The golden scenario: two partitions, partition 0 flapping hard, six
/// tenants offering a Poisson mix, reactive or oblivious scheduling.
fn golden_run(
    reactive: bool,
    jobs: usize,
    spec: Option<TraceSpec>,
) -> (RuntimeReport, Option<RuntimeTrace>) {
    let topo = golden_topo();
    let hazard = FaultPlan::new(0xC0FE)
        .with(FaultModel::FlappingPort {
            fraction: 0.3,
            period_ns: 40_000,
            down_ns: 30_000,
            start_ns: 0,
            end_ns: 8_000_000,
        })
        .compile(&topo);
    let mut rt = Runtime::new(
        topo,
        RuntimeConfig {
            pool: PoolConfig::with_capacity(32),
            max_inflight: 4,
            partitions: 2,
            partition_faults: vec![hazard, LinkSchedule::empty()],
            reactive: reactive.then(ReactivePolicy::default),
            watchdog_cutoffs: 8,
            trace: spec,
            ..RuntimeConfig::default()
        },
    );
    for i in 0..6 {
        rt.register_tenant(&format!("t{i}"));
    }
    let workload = Workload {
        tenants: 6,
        horizon_ns: 600_000 * 12,
        rate: RateProcess::Poisson {
            mean_interarrival_ns: 600_000,
        },
        mix: OpMix {
            allgather_weight: 2,
            broadcast_weight: 1,
            agrs_weight: 1,
            min_send_len: 4 << 10,
            max_send_len: 16 << 10,
            ranks: 8,
        },
        seed: 0xD1CE,
    };
    rt.load_arrivals(&workload.generate());
    let report = rt.run_open_loop_jobs(jobs);
    let trace = rt.take_trace();
    (report, trace)
}

#[test]
fn reactive_faulted_run_identical_across_worker_counts() {
    let (r1, t1) = golden_run(true, 1, Some(TraceSpec::default()));
    let (r4, t4) = golden_run(true, 4, Some(TraceSpec::default()));
    assert!(
        r1.completed_jobs() > 0,
        "golden scenario must make progress"
    );
    assert_eq!(r1, r4, "report diverged across worker counts");
    assert_eq!(t1, t4, "trace diverged across worker counts");
    // Byte-identical all the way out to the Perfetto export.
    let (t1, t4) = (t1.unwrap(), t4.unwrap());
    assert_eq!(
        export_chrome(&t1, &ChromeOptions::default()),
        export_chrome(&t4, &ChromeOptions::default())
    );
}

#[test]
fn oblivious_faulted_run_identical_across_worker_counts() {
    let (r1, _) = golden_run(false, 1, None);
    let (r4, _) = golden_run(false, 4, None);
    assert_eq!(r1, r4, "oblivious report diverged across worker counts");
}

#[test]
fn reactive_p999_no_worse_than_oblivious_on_the_golden_scenario() {
    // Pool per-job sojourns over a handful of paired seeds (identical
    // hazard + arrival stream per seed, only the scheduler differs) for
    // both fault models the acceptance bar names.
    for model in [RecoveryFault::Flapping, RecoveryFault::SwitchFail] {
        let pooled = |reactive: bool| -> Vec<u64> {
            let mut lat: Vec<u64> = (0..8)
                .flat_map(|seed| {
                    run_one(&RecoveryRun {
                        model,
                        rate: 0.3,
                        reactive,
                        seed,
                    })
                    .latencies_ns
                })
                .collect();
            lat.sort_unstable();
            lat
        };
        let (obl, rea) = (pooled(false), pooled(true));
        assert_eq!(obl.len(), rea.len(), "paired runs record the same jobs");
        let p999 = |lat: &[u64]| lat[((lat.len() * 999).div_ceil(1000)).max(1) - 1];
        assert!(
            p999(&rea) <= p999(&obl),
            "reactive p999 worse than oblivious under {:?}: {} vs {} ns",
            model,
            p999(&rea),
            p999(&obl),
        );
    }
}

#[test]
fn retry_counters_reconcile_on_a_dead_fabric() {
    // Single partition, every link dead forever: the reactive runtime
    // must censor each attempt, burn the full retry budget with backoff,
    // and record one censored job whose counters reconcile — never hang
    // or panic.
    let topo = golden_topo();
    let all_down = LinkSchedule::new(
        (0..topo.num_links() as u32)
            .map(|l| {
                mcast_allgather::simnet::LinkStateEvent::down(0, mcast_allgather::simnet::LinkId(l))
            })
            .collect(),
    );
    let policy = ReactivePolicy::default();
    let mut rt = Runtime::new(
        topo,
        RuntimeConfig {
            pool: PoolConfig::with_capacity(8),
            partition_faults: vec![all_down],
            reactive: Some(policy),
            watchdog_cutoffs: 4,
            ..RuntimeConfig::default()
        },
    );
    let t = rt.register_tenant("doomed");
    rt.submit(t, JobKind::Allgather, 8 << 10).unwrap();
    let report = rt.run_to_completion();
    assert_eq!(report.completed_jobs(), 0);
    assert_eq!(report.timed_out_jobs(), 1);
    assert_eq!(report.retry.gave_up_jobs, 1);
    assert_eq!(
        report.retry.retried_jobs,
        (policy.max_attempts - 1) as u64,
        "every attempt but the last is a retry"
    );
    assert!(
        report.retry.backoff_ns_sum > 0,
        "retries waited out backoff"
    );
    let rec = &report.jobs[0];
    assert!(rec.timed_out);
    assert_eq!(rec.attempts, policy.max_attempts);
    // Censored sojourn is surfaced in the tenant aggregates too.
    assert_eq!(report.tenants[0].timed_out, 1);
    assert!(report.tenants[0].censored_ns_sum >= rec.latency_ns());
}
